"""Render AST nodes back to SQL text.

The writer produces a single normalized surface form (uppercase keywords,
single spaces, explicit comma joins), which the canonicalizer and the QFG
rely on for stable fragment keys.
"""

from __future__ import annotations

from repro.sql.ast import (
    AndPredicate,
    BetweenPredicate,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InPredicate,
    IsNullPredicate,
    Literal,
    NotPredicate,
    OpPlaceholder,
    OrPredicate,
    OrderItem,
    Predicate,
    Query,
    SelectItem,
    Star,
    Subquery,
    TableRef,
    ValuePlaceholder,
)


def write_query(query: Query) -> str:
    """Render a full SELECT statement."""
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_write_select_item(item) for item in query.select))
    parts.append("FROM")
    parts.append(", ".join(_write_table_ref(ref) for ref in query.from_tables))
    if query.where is not None:
        parts.append("WHERE")
        parts.append(write_predicate(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(write_expr(expr) for expr in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(write_predicate(query.having))
    if query.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_write_order_item(item) for item in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def _write_select_item(item: SelectItem) -> str:
    rendered = write_expr(item.expr)
    if item.alias:
        return f"{rendered} AS {item.alias}"
    return rendered


def _write_table_ref(ref: TableRef) -> str:
    if ref.alias:
        return f"{ref.table} {ref.alias}"
    return ref.table


def _write_order_item(item: OrderItem) -> str:
    rendered = write_expr(item.expr)
    return f"{rendered} DESC" if item.descending else rendered


def write_expr(expr: Expr) -> str:
    """Render one expression."""
    if isinstance(expr, ColumnRef):
        return str(expr)
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(expr.value)
    if isinstance(expr, ValuePlaceholder):
        return f"?{expr.name}"
    if isinstance(expr, Star):
        return f"{expr.qualifier}.*" if expr.qualifier else "*"
    if isinstance(expr, FuncCall):
        inner = ", ".join(write_expr(arg) for arg in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, Subquery):
        return f"({write_query(expr.query)})"
    raise TypeError(f"unknown expression node {expr!r}")


def write_predicate(predicate: Predicate) -> str:
    """Render one predicate tree (parenthesizing OR under AND)."""
    if isinstance(predicate, Comparison):
        op = "?op" if isinstance(predicate.op, OpPlaceholder) else predicate.op
        return f"{write_expr(predicate.left)} {op} {write_expr(predicate.right)}"
    if isinstance(predicate, InPredicate):
        values = ", ".join(write_expr(value) for value in predicate.values)
        keyword = "NOT IN" if predicate.negated else "IN"
        # A subquery IN-source renders with its own parens already.
        if len(predicate.values) == 1 and isinstance(predicate.values[0], Subquery):
            return f"{write_expr(predicate.left)} {keyword} {values}"
        return f"{write_expr(predicate.left)} {keyword} ({values})"
    if isinstance(predicate, BetweenPredicate):
        keyword = "NOT BETWEEN" if predicate.negated else "BETWEEN"
        return (
            f"{write_expr(predicate.left)} {keyword} "
            f"{write_expr(predicate.low)} AND {write_expr(predicate.high)}"
        )
    if isinstance(predicate, IsNullPredicate):
        keyword = "IS NOT NULL" if predicate.negated else "IS NULL"
        return f"{write_expr(predicate.left)} {keyword}"
    if isinstance(predicate, AndPredicate):
        return " AND ".join(
            _maybe_paren(child) for child in predicate.children
        )
    if isinstance(predicate, OrPredicate):
        return " OR ".join(
            _maybe_paren(child) for child in predicate.children
        )
    if isinstance(predicate, NotPredicate):
        return f"NOT ({write_predicate(predicate.child)})"
    raise TypeError(f"unknown predicate node {predicate!r}")


def _maybe_paren(predicate: Predicate) -> str:
    rendered = write_predicate(predicate)
    if isinstance(predicate, (OrPredicate, AndPredicate)):
        return f"({rendered})"
    return rendered
