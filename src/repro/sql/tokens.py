"""Token kinds and the token dataclass shared by tokenizer and parser."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    KEYWORD = "keyword"        # SELECT, FROM, WHERE, ...
    IDENTIFIER = "identifier"  # table/column/alias names
    NUMBER = "number"          # integer or float literal
    STRING = "string"          # 'single quoted'
    OPERATOR = "operator"      # = != <> < <= > >=
    PLACEHOLDER = "placeholder"  # ?val ?op ?attr ...
    COMMA = ","
    DOT = "."
    LPAREN = "("
    RPAREN = ")"
    STAR = "*"
    EOF = "eof"


#: Reserved words recognized case-insensitively.  Everything else is an
#: identifier.  Aggregate function names are *not* reserved: they are
#: ordinary identifiers that the parser treats as functions when followed
#: by '('.
KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT",
        "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
        "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "ON", "AS",
        "LIKE", "IN", "BETWEEN", "IS", "NULL", "EXISTS",
    }
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def is_keyword(self, *words: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.upper in words

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}@{self.position})"
