"""The unified entry point: ``Engine.from_config`` builds the whole stack.

The paper draws Templar as one facade an NLIDB plugs into (Figure 2);
this module is the repo-level analogue: one declarative construction path
shared by the CLI, the HTTP server, the evaluation harness and the
examples.  An :class:`Engine` resolves an
:class:`~repro.api.config.EngineConfig` into

* a benchmark dataset (database, lexicon, workload),
* a query log — rebuilt from gold SQL, streamed from a log file, loaded
  from a published artifact version, or empty,
* a registered NLIDB backend (:mod:`repro.nlidb.registry`),
* a cached, concurrent :class:`~repro.serving.TranslationService`,
* a best-effort NLQ parser for raw-string requests,

and then answers :class:`~repro.serving.wire.TranslationRequest`\\ s —
raw NLQ strings or pre-parsed keyword lists — with the unified
:class:`~repro.serving.wire.TranslationResponse`.

Quick start:

    >>> from repro.api import Engine, EngineConfig
    >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
    ...     response = engine.translate("return the papers after 2000")
    >>> response.sql
    'SELECT t1.title FROM publication t1 WHERE t1.year > 2000'

The candidate-retrieval index of the keyword mapper
(:class:`~repro.core.candidate_index.CandidateIndex`) is built here at
``from_config`` time — or loaded from the artifact store when
``log_source="artifacts"`` — so no request pays for it.
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path
from typing import Sequence

from repro.api.config import EngineConfig
from repro.core.candidate_index import CandidateIndex
from repro.core.explain import ConfigurationExplanation, explain_configuration
from repro.core.interface import Keyword, keywords_cache_key
from repro.core.log import QueryLog
from repro.core.templar import Templar
from repro.datasets.base import BenchmarkDataset
from repro.datasets.registry import load_dataset
from repro.embedding.model import CompositeModel
from repro.errors import ConfigError, ServingError, TranslationError
from repro.nlidb.base import NLIDB
from repro.nlidb.nalir_parser import NalirParser
from repro.nlidb.registry import BackendSpec, build_backend, get_backend
from repro.obs.trace import Tracer
from repro.serving.service import (
    TranslationService,
    resolve_request_keywords,
    take_truncation,
    translate_request,
)
from repro.serving.wire import TranslationRequest, TranslationResponse


class Engine:
    """One assembled translation stack, built declaratively from a config.

    Construct with :meth:`from_config`; the direct constructor wires
    pre-built parts together (dependency injection for tests and custom
    datasets).

    >>> from repro.api import Engine, EngineConfig
    >>> engine = Engine.from_config(EngineConfig(dataset="mas"))
    >>> engine
    Engine(Pipeline+ on 'mas', log_source='dataset')
    >>> engine.close()
    """

    def __init__(
        self,
        config: EngineConfig,
        *,
        dataset: BenchmarkDataset,
        backend: BackendSpec,
        nlidb: NLIDB,
        service: TranslationService,
        parser: NalirParser | None = None,
        templar: Templar | None = None,
        artifact_version: str | None = None,
        owned_journal=None,
        owned_control_plane=None,
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.backend = backend
        self.nlidb = nlidb
        self.service = service
        self.parser = parser
        self.templar = templar
        self.artifact_version = artifact_version
        #: The RequestJournal this engine built from its own config (and
        #: therefore closes); an injected shared journal (the gateway's)
        #: stays owned by its creator and is reachable via
        #: ``service.journal``.
        self._owned_journal = owned_journal
        #: Same ownership rule for the control plane: built-from-config
        #: planes are closed here, injected (gateway-shared) ones are not.
        self._owned_control_plane = owned_control_plane
        # Everything in the provenance is immutable after construction;
        # hash the config once instead of on every request.
        self._provenance = {
            "backend": backend.display_name,
            "dataset": dataset.name,
            "config_fingerprint": config.fingerprint()[:12],
        }
        if artifact_version is not None:
            self._provenance["artifact_version"] = artifact_version

    # -------------------------------------------------------- construction

    @classmethod
    def from_config(
        cls,
        config: EngineConfig | dict | str | Path,
        *,
        dataset: BenchmarkDataset | None = None,
        query_log: QueryLog | None = None,
        journal=None,
        journal_tenant: str | None = None,
        control_plane=None,
    ) -> "Engine":
        """Resolve a config into a ready engine.

        ``config`` may be an :class:`EngineConfig`, a plain dict (strictly
        decoded), or a path to a JSON config file.  ``dataset`` overrides
        the named dataset with an in-memory one (custom schemas, tests);
        ``query_log`` overrides the log source with an explicit log
        (incompatible with ``log_source="artifacts"``).  ``journal``
        injects a shared :class:`~repro.obs.journal.RequestJournal` (the
        gateway's, tenant-stamped with ``journal_tenant``) — mutually
        exclusive with ``config.journal_dir``, which builds a journal
        this engine owns and closes.  ``control_plane`` injects a shared
        :class:`~repro.controlplane.ControlPlane` under the same
        ownership rule as the journal (mutually exclusive with
        ``config.control_plane_path``); when the plane carries feedback,
        the engine applies the tenant's durable feedback history to its
        freshly built QFG before serving.

        >>> from repro.api import Engine
        >>> with Engine.from_config({"dataset": "mas",
        ...                          "backend": "pipeline"}) as engine:
        ...     engine.backend.display_name
        'Pipeline'
        """
        if isinstance(config, (str, Path)):
            config = EngineConfig.from_file(config)
        elif isinstance(config, dict):
            config = EngineConfig.from_dict(config)
        if dataset is None:
            dataset = load_dataset(config.dataset)
        spec = get_backend(config.backend)

        templar: Templar | None = None
        artifact_version: str | None = None
        if query_log is not None and config.log_source in ("artifacts", "file"):
            # Overriding a concretely configured log source would leave
            # the config (and its fingerprint) claiming a different log
            # than the engine trains on.
            raise ConfigError(
                f"an explicit query_log cannot override log_source "
                f"{config.log_source!r}; use log_source 'none' (or "
                f"'dataset') with an injected log"
            )
        if not spec.augmented:
            # A baseline backend consumes no log; explicitly requested
            # log state must fail loudly, not be silently dropped.
            if config.log_source in ("artifacts", "file"):
                raise ConfigError(
                    f"backend {spec.name!r} is not log-augmented and cannot "
                    f"serve log_source {config.log_source!r}; use the "
                    f"augmented variant or log_source 'dataset'/'none'"
                )
            if query_log is not None:
                raise ConfigError(
                    f"backend {spec.name!r} is not log-augmented and cannot "
                    f"use an injected query_log"
                )
        if spec.augmented:
            templar_kwargs = dict(
                obscurity=config.obscurity_level(),
                params=config.scoring_params(),
                use_log_keywords=config.use_log_keywords,
                use_log_joins=config.use_log_joins,
            )
            if config.log_source == "artifacts":
                from repro.serving.artifacts import ArtifactStore

                artifacts = ArtifactStore(config.artifacts).load(
                    dataset.name, config.artifact_version
                )
                if artifacts.qfg.obscurity is not config.obscurity_level():
                    # Serving a different obscurity than the config
                    # declares would silently misdescribe the deployment.
                    raise ConfigError(
                        f"config obscurity {config.obscurity!r} does not "
                        f"match artifact version {artifacts.version!r} "
                        f"(compiled with {artifacts.qfg.obscurity.value!r}); "
                        f"align the config or recompile the artifacts"
                    )
                artifact_version = artifacts.version
                # build_templar pins obscurity to the compiled QFG's; the
                # check above guarantees that equals the config's.
                templar_kwargs.pop("obscurity")
                # Serve the state that was compiled: the artifact lexicon,
                # not the (possibly newer) in-process dataset's.
                templar = artifacts.build_templar(
                    dataset.database, **templar_kwargs
                )
            else:
                log = query_log
                if log is None:
                    if config.log_source == "dataset":
                        log = QueryLog(
                            [item.gold_sql for item in dataset.usable_items()]
                        )
                    elif config.log_source == "file":
                        log = QueryLog.from_file(config.log_path)
                    # "none": stay empty; observe() grows the QFG online.
                templar = Templar(
                    dataset.database,
                    CompositeModel(dataset.lexicon),
                    log,
                    candidate_index=CandidateIndex.from_database(
                        dataset.database
                    ),
                    **templar_kwargs,
                )

        nlidb = build_backend(
            config.backend,
            dataset,
            templar,
            max_configurations=config.max_configurations,
            params=config.scoring_params(),
            simulate_parse_failures=config.simulate_parse_failures,
        )
        owned_journal = None
        if config.journal_dir:
            if journal is not None:
                # Two destinations for the same records would silently
                # fork the serving history.
                raise ConfigError(
                    f"an injected journal cannot override journal_dir "
                    f"{config.journal_dir!r}; drop one of the two"
                )
            from repro.obs.journal import RequestJournal

            journal = owned_journal = RequestJournal(
                config.journal_dir,
                segment_bytes=config.journal_segment_bytes,
                segments=config.journal_segments,
            )
        owned_control_plane = None
        if config.control_plane_path:
            if control_plane is not None:
                raise ConfigError(
                    f"an injected control plane cannot override "
                    f"control_plane_path {config.control_plane_path!r}; "
                    f"drop one of the two"
                )
            from repro.controlplane import ControlPlane

            control_plane = owned_control_plane = ControlPlane(
                config.control_plane_path,
                cache=config.control_plane_cache,
                idempotency=config.control_plane_idempotency,
                feedback=config.control_plane_feedback,
                idempotency_ttl_seconds=config.idempotency_ttl_seconds,
            )
        service = TranslationService(
            nlidb,
            templar=templar,
            cache_size=config.cache_size,
            max_workers=config.max_workers,
            learn_batch_size=config.learn_batch_size,
            tracer=Tracer(
                enabled=config.tracing, keep_slowest=config.trace_keep
            ),
            slow_query_ms=config.slow_query_ms,
            journal=journal,
            journal_tenant=journal_tenant or config.dataset,
            control_plane=control_plane,
            slo=config.slo,
            drift_threshold=config.drift_threshold,
        )
        # Raw-NLQ front-end: a backend that brings its own parser (the
        # NaLIR family, plugins with parses_nlq=True) keeps it; everyone
        # else gets the rule-based parser as a best-effort front door.
        parser = getattr(nlidb, "parser", None)
        if parser is None:
            parser = NalirParser(
                dataset.database,
                dataset.schema_terms,
                simulate_failures=config.simulate_parse_failures,
            )
        engine = cls(
            config,
            dataset=dataset,
            backend=spec,
            nlidb=nlidb,
            service=service,
            parser=parser,
            templar=templar,
            artifact_version=artifact_version,
            owned_journal=owned_journal,
            owned_control_plane=owned_control_plane,
        )
        if control_plane is not None and control_plane.feedback_enabled \
                and templar is not None:
            # Catch up on the tenant's durable feedback history: a fresh
            # replica (or a post-crash restart) rebuilds its QFG from the
            # log source, which does not include user verdicts.
            engine.apply_feedback()
        return engine

    # ----------------------------------------------------------- translate

    def translate(
        self,
        request: TranslationRequest | str | Sequence[Keyword] | dict,
        *,
        limit: int | None = None,
        observe: bool | None = None,
        idempotency_key: str | None = None,
    ) -> TranslationResponse:
        """Answer one request (raw NLQ, keywords, payload, or request).

        When the request asks to ``observe``, the top translation is fed
        back into the QFG learning queue after translation — unless the
        control plane identified the request as an idempotent replay or
        a concurrent duplicate (``response.learnable`` is False), in
        which case the retry contributes exactly zero observations.

        >>> from repro.api import Engine, EngineConfig
        >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        ...     response = engine.translate(
        ...         {"nlq": "return the authors", "limit": 1})
        >>> response.sql
        'SELECT t1.name FROM author t1'
        """
        request = TranslationRequest.of(request, limit=limit, observe=observe)
        self._check_observable(request)
        response = translate_request(
            self.service, request,
            parser=self.parser, provenance=self.provenance(),
            idempotency_key=idempotency_key,
        )
        if request.observe and response.results and response.learnable:
            self.observe(response.results[0].sql)
        return response

    def _check_observable(self, request: TranslationRequest) -> None:
        """Reject an unservable ``observe`` before paying for translation."""
        if request.observe and self.templar is None:
            raise ServingError(
                "cannot observe queries: the wrapped NLIDB has no Templar"
            )

    def translate_batch(
        self,
        requests: Sequence[TranslationRequest | str | Sequence[Keyword] | dict],
    ) -> list[TranslationResponse]:
        """Translate many requests at once, deduplicated and fanned out.

        NLQ requests are parsed up front, then the whole batch goes
        through the service's deduplicating thread-pool path; responses
        come back in input order.

        >>> from repro.api import Engine, EngineConfig
        >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        ...     responses = engine.translate_batch(
        ...         ["return the authors", "return the authors"])
        >>> [response.sql for response in responses]
        ['SELECT t1.name FROM author t1', 'SELECT t1.name FROM author t1']
        """
        normalized = [TranslationRequest.of(request) for request in requests]
        for request in normalized:
            self._check_observable(request)
        started = time.perf_counter()
        keyword_lists: list[tuple[Keyword, ...]] = []
        parse_ms: list[float] = []
        for request in normalized:
            keywords, elapsed = self._resolve_keywords(request)
            keyword_lists.append(keywords)
            parse_ms.append(elapsed)
        batches = self.service.translate_batch(keyword_lists)
        batch_ms = (time.perf_counter() - started) * 1000.0
        responses = []
        # Truncation reports are keyed per request; consume them once per
        # unique keyword list so duplicates in the batch (computed once)
        # all surface the same drop count.
        truncated: dict[tuple, int] = {}
        for keywords in keyword_lists:
            key = keywords_cache_key(keywords)
            if key not in truncated:
                truncated[key] = take_truncation(self.service, keywords)
        for request, keywords, results, parsed in zip(
            normalized, keyword_lists, batches, parse_ms
        ):
            provenance = self.provenance()
            dropped = truncated[keywords_cache_key(keywords)]
            if dropped:
                provenance["configurations_truncated"] = dropped
            # Requests in a batch are translated concurrently and
            # deduplicated, so no honest per-request translate time
            # exists; "translate"/"total" carry the shared batch
            # wall-clock (keeping the TranslationResponse key contract)
            # and "batch_size" marks them as batch-level numbers.
            responses.append(TranslationResponse(
                request=request,
                results=results,
                keywords=keywords,
                provenance=provenance,
                timings_ms={
                    "parse": parsed,
                    "translate": batch_ms,
                    "total": batch_ms,
                    "batch_size": len(normalized),
                },
            ))
        for response in responses:
            if response.request.observe and response.results:
                self.observe(response.results[0].sql)
        return responses

    def _resolve_keywords(
        self, request: TranslationRequest
    ) -> tuple[tuple[Keyword, ...], float]:
        return resolve_request_keywords(request, self.parser)

    def explain(
        self, request: TranslationRequest | str | Sequence[Keyword] | dict
    ) -> ConfigurationExplanation:
        """Decompose the winning configuration's score for one request.

        A pure diagnostic: the request's ``observe`` flag is ignored so
        explaining never mutates QFG learning state.

        >>> from repro.api import Engine, EngineConfig
        >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        ...     explanation = engine.explain("return the papers after 2000")
        >>> type(explanation).__name__
        'ConfigurationExplanation'
        """
        response = self.translate(request, observe=False)
        if response.top is None:
            raise TranslationError(
                "nothing to explain: the request produced no translation"
            )
        configuration = response.top.configuration
        if configuration is None:
            # Durable-cache replays carry only the wire fields; recompute
            # through the service (warm in-process caches) to recover the
            # configuration lineage the explanation decomposes.
            keywords, _ = self._resolve_keywords(
                TranslationRequest.of(request)
            )
            results = self.service.translate(keywords)
            if not results:  # pragma: no cover - replay implies results
                raise TranslationError(
                    "nothing to explain: the request produced no translation"
                )
            configuration = results[0].configuration
        return explain_configuration(
            configuration,
            self.templar.qfg if self.templar is not None else None,
        )

    @property
    def tracer(self):
        """The serving layer's request tracer (span trees, trace store).

        >>> from repro.api import Engine, EngineConfig
        >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        ...     response = engine.translate("return the papers after 2000")
        ...     trace = engine.tracer.store.get(
        ...         response.provenance["trace_id"])
        >>> [span["name"] for span in trace.root["children"]]
        ['parse', 'translate']
        """
        return self.service.tracer

    # ------------------------------------------------------------ learning

    def observe(self, sql: str) -> None:
        """Queue one served SQL statement for QFG ingestion.

        >>> from repro.api import Engine, EngineConfig
        >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        ...     engine.observe("SELECT name FROM author")
        ...     engine.service.pending_observations
        1
        """
        self.service.observe(sql)

    def absorb_pending(self) -> int:
        """Apply queued observations to the QFG now; returns how many.

        >>> from repro.api import Engine, EngineConfig
        >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        ...     engine.observe("SELECT name FROM author")
        ...     engine.absorb_pending()
        1
        """
        return self.service.absorb_pending()

    def apply_feedback(self) -> int:
        """Absorb unseen durable user feedback into the QFG; returns count.

        Walks the control plane's feedback table past this engine's
        cursor: accepted SQL and corrections are observed and absorbed,
        rejects advance the cursor without teaching anything.  A no-op
        without a control plane (or with feedback disabled).
        """
        from repro.controlplane.feedback import apply_feedback

        return apply_feedback(self.service)

    def take_pending(self) -> list[str]:
        """Remove and return queued observations *without* absorbing them.

        The gateway's hot-swap uses this to carry a retiring engine's
        unabsorbed observations over to its replacement instead of
        folding them into the graph that is being thrown away.

        >>> from repro.api import Engine, EngineConfig
        >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        ...     engine.observe("SELECT name FROM author")
        ...     engine.take_pending()
        ['SELECT name FROM author']
        """
        return self.service.take_pending()

    # ----------------------------------------------------------- lifecycle

    def provenance(self) -> dict:
        """How answers are produced: backend, dataset, config identity.

        >>> from repro.api import Engine, EngineConfig
        >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        ...     provenance = engine.provenance()
        >>> provenance["backend"], provenance["dataset"]
        ('Pipeline+', 'mas')
        """
        return dict(self._provenance)

    def fingerprint(self) -> str:
        """Content identity of the engine: config plus resolved log state.

        Two engines with equal fingerprints serve identical scores, so
        the config round trip (``to_dict`` → ``from_dict``) must preserve
        this exactly.

        >>> from repro.api import Engine, EngineConfig
        >>> config = EngineConfig(dataset="mas")
        >>> with Engine.from_config(config) as first:
        ...     with Engine.from_config(config) as second:
        ...         first.fingerprint() == second.fingerprint()
        True
        """
        digest = hashlib.sha256(self.config.fingerprint().encode("utf-8"))
        digest.update(self.backend.name.encode("utf-8"))
        digest.update(self.dataset.name.encode("utf-8"))
        qfg = self.templar.qfg if self.templar is not None else None
        digest.update(
            qfg.fingerprint().encode("utf-8") if qfg is not None else b"no-qfg"
        )
        return digest.hexdigest()

    def stats(self) -> dict:
        """Operational snapshot: service stats plus engine provenance.

        >>> from repro.api import Engine, EngineConfig
        >>> with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        ...     stats = engine.stats()
        >>> sorted(stats)
        ['caches', 'control_plane', 'drift', 'engine', 'journal', 'metrics', 'pending_observations', 'qfg', 'slo', 'system']
        """
        stats = self.service.stats()
        stats["engine"] = self.provenance()
        return stats

    @property
    def journal(self):
        """The request journal this engine's requests land in, or None."""
        return self.service.journal

    @property
    def control_plane(self):
        """The durable control plane this engine serves through, or None."""
        return self.service.control_plane

    def close(self) -> None:
        """Shut the serving layer down (absorbs pending observations)."""
        self.service.close()
        if self._owned_control_plane is not None:
            self._owned_control_plane.close()
        if self._owned_journal is not None:
            self._owned_journal.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Engine({self.backend.display_name} on {self.dataset.name!r}, "
            f"log_source={self.config.log_source!r})"
        )
