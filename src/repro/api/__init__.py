"""Unified public API: declarative configs, one Engine, one wire format.

* :mod:`repro.api.config` — :class:`EngineConfig`, the serializable
  description of a deployment (dataset, backend, log source, scoring and
  serving knobs) with a strict ``to_dict``/``from_dict``/``from_file``
  codec.
* :mod:`repro.api.engine` — :class:`Engine`, the facade every frontend
  (CLI, HTTP, eval, examples) builds through ``Engine.from_config`` and
  talks to via ``translate`` / ``translate_batch`` / ``explain`` /
  ``observe``.

The request/response pair lives in :mod:`repro.serving.wire` and is
re-exported here for convenience.
"""

from repro.api.config import LOG_SOURCES, EngineConfig
from repro.api.engine import Engine
from repro.serving.wire import TranslationRequest, TranslationResponse

__all__ = [
    "Engine",
    "EngineConfig",
    "LOG_SOURCES",
    "TranslationRequest",
    "TranslationResponse",
]
