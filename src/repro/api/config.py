"""Declarative engine configuration: one serializable object per deployment.

:class:`EngineConfig` captures everything :class:`~repro.api.engine.Engine`
needs to assemble a translation stack — dataset, backend, query-log
source, similarity/scoring knobs, serving cache sizes — as a frozen,
JSON-round-trippable dataclass.  Every frontend (CLI, HTTP server, eval
harness, examples) describes *what* to run with one of these instead of
hand-wiring constructors.

The codec is strict: :meth:`EngineConfig.from_dict` rejects unknown keys
with a :class:`~repro.errors.ConfigError`, so a typo in a config file
fails loudly instead of silently running defaults.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path

from repro.core.fragments import Obscurity
from repro.core.keyword_mapper import ScoringParams
from repro.errors import ConfigError
from repro.obs.slo import SLOPolicy

#: Where the query log that feeds the QFG comes from.
#:
#: * ``"dataset"`` — the gold SQL of the dataset's usable items (the
#:   paper's log source),
#: * ``"file"`` — a SQL log file at :attr:`EngineConfig.log_path` (messy
#:   real-world formats handled by the ingest reader),
#: * ``"artifacts"`` — a compiled version in the artifact store at
#:   :attr:`EngineConfig.artifacts` (startup is a verified load, not a
#:   rebuild; ``repro warmup`` / ``repro ingest`` publish these),
#: * ``"none"`` — start with an empty log (online learning only).
LOG_SOURCES = ("dataset", "file", "artifacts", "none")


@dataclass(frozen=True)
class EngineConfig:
    """Everything needed to build an :class:`~repro.api.engine.Engine`.

    >>> config = EngineConfig(dataset="mas", backend="pipeline+", kappa=3)
    >>> config.dataset, config.backend, config.kappa
    ('mas', 'pipeline+', 3)
    >>> EngineConfig(log_source="nowhere")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigError: unknown log_source 'nowhere'; one of: dataset, file, artifacts, none
    """

    # What to serve.
    dataset: str = "mas"
    backend: str = "pipeline+"

    # Where the query log comes from (see LOG_SOURCES).
    log_source: str = "dataset"
    log_path: str | None = None
    artifacts: str | None = None
    artifact_version: str | None = None

    # Templar / scoring knobs (paper defaults).
    obscurity: str = Obscurity.NO_CONST_OP.value
    kappa: int = 5
    lam: float = 0.8
    use_log_keywords: bool = True
    use_log_joins: bool = True
    max_configurations: int = 10

    # Serving knobs.
    cache_size: int = 2048
    max_workers: int = 4
    learn_batch_size: int | None = None

    # Observability knobs: request tracing (tail-sampled span trees,
    # ``trace_keep`` slowest requests retained) and the slow-query log
    # threshold in milliseconds (None disables the log).
    tracing: bool = True
    trace_keep: int = 64
    slow_query_ms: float | None = None

    # Durable request journal (repro.obs.journal): JSONL segments under
    # ``journal_dir`` (None disables journaling), rotated at
    # ``journal_segment_bytes`` with the oldest deleted beyond
    # ``journal_segments``.
    journal_dir: str | None = None
    journal_segment_bytes: int = 1_000_000
    journal_segments: int = 8

    # Persistent control plane (repro.controlplane): one WAL-mode SQLite
    # file shared by every replica serving this config (None disables
    # it).  The three surfaces toggle independently: the durable
    # translation cache, idempotency keys (with request-hash fallback
    # for observe requests), and the user-feedback loop.
    control_plane_path: str | None = None
    control_plane_cache: bool = True
    control_plane_idempotency: bool = True
    control_plane_feedback: bool = True
    idempotency_ttl_seconds: float = 3600.0

    # Judgment layer (repro.obs.slo / repro.obs.drift): declarative
    # service-level objectives evaluated over the metrics registry with
    # multi-window burn-rate alerting (None = no SLOs declared), and the
    # quality-drift detection threshold — the total-variation shift in
    # ranking behaviour that flags a tick (None disables the monitor).
    slo: SLOPolicy | None = None
    drift_threshold: float | None = None

    # NLQ front-end: the harness keeps the paper-faithful failure modes,
    # end-user frontends use the best-effort parse.
    simulate_parse_failures: bool = False

    def __post_init__(self) -> None:
        if self.log_source not in LOG_SOURCES:
            raise ConfigError(
                f"unknown log_source {self.log_source!r}; "
                f"one of: {', '.join(LOG_SOURCES)}"
            )
        if self.log_source == "file" and not self.log_path:
            raise ConfigError("log_source 'file' requires log_path")
        if self.log_path is not None and self.log_source != "file":
            # A set-but-unused field would silently train on the wrong log.
            raise ConfigError(
                f"log_path is only used with log_source 'file' "
                f"(got log_source {self.log_source!r})"
            )
        if self.log_source == "artifacts" and not self.artifacts:
            raise ConfigError(
                "log_source 'artifacts' requires the artifacts store root"
            )
        if self.artifacts is not None and self.log_source != "artifacts":
            raise ConfigError(
                f"artifacts is only used with log_source 'artifacts' "
                f"(got log_source {self.log_source!r})"
            )
        if self.artifact_version is not None and not self.artifacts:
            raise ConfigError(
                "artifact_version pins a store version and requires artifacts"
            )
        try:
            Obscurity(self.obscurity)
        except ValueError:
            valid = ", ".join(o.value for o in Obscurity)
            raise ConfigError(
                f"unknown obscurity {self.obscurity!r}; one of: {valid}"
            ) from None
        if self.kappa < 1:
            raise ConfigError(f"kappa must be >= 1, got {self.kappa}")
        if not 0.0 <= self.lam <= 1.0:
            raise ConfigError(f"lam must be in [0, 1], got {self.lam}")
        if self.max_configurations < 1:
            raise ConfigError(
                f"max_configurations must be >= 1, got {self.max_configurations}"
            )
        if self.cache_size < 0:
            raise ConfigError(
                f"cache_size must be >= 0 (0 disables caching), "
                f"got {self.cache_size}"
            )
        if self.max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.trace_keep < 1:
            raise ConfigError(f"trace_keep must be >= 1, got {self.trace_keep}")
        if self.slow_query_ms is not None and self.slow_query_ms <= 0:
            raise ConfigError(
                f"slow_query_ms must be positive, got {self.slow_query_ms}"
            )
        if self.journal_segment_bytes < 256:
            raise ConfigError(
                f"journal_segment_bytes must be >= 256, "
                f"got {self.journal_segment_bytes}"
            )
        if self.journal_segments < 1:
            raise ConfigError(
                f"journal_segments must be >= 1, got {self.journal_segments}"
            )
        if self.idempotency_ttl_seconds <= 0:
            raise ConfigError(
                f"idempotency_ttl_seconds must be positive, "
                f"got {self.idempotency_ttl_seconds}"
            )
        if self.slo is not None and not isinstance(self.slo, SLOPolicy):
            raise ConfigError(
                f"slo must be an SLOPolicy (or a dict via from_dict), "
                f"got {type(self.slo).__name__}"
            )
        if self.drift_threshold is not None and not (
            0.0 < self.drift_threshold <= 1.0
        ):
            raise ConfigError(
                f"drift_threshold must be in (0, 1], "
                f"got {self.drift_threshold}"
            )

    # ------------------------------------------------------------ resolved

    def obscurity_level(self) -> Obscurity:
        """The configured obscurity as its enum.

        >>> EngineConfig().obscurity_level()
        <Obscurity.NO_CONST_OP: 'NoConstOp'>
        """
        return Obscurity(self.obscurity)

    def scoring_params(self) -> ScoringParams:
        """The mapper's :class:`ScoringParams` for this config.

        >>> params = EngineConfig(kappa=3, lam=0.5).scoring_params()
        >>> params.kappa, params.lam
        (3, 0.5)
        """
        return ScoringParams(kappa=self.kappa, lam=self.lam)

    # --------------------------------------------------------------- codec

    def to_dict(self) -> dict:
        """JSON-ready dict; ``from_dict(to_dict())`` is the identity.

        >>> config = EngineConfig(dataset="yelp", kappa=7)
        >>> EngineConfig.from_dict(config.to_dict()) == config
        True
        >>> policy = SLOPolicy(latency_p99_ms=50.0)
        >>> config = EngineConfig(slo=policy)
        >>> EngineConfig.from_dict(config.to_dict()).slo == policy
        True
        """
        payload = asdict(self)
        if self.slo is not None:
            payload["slo"] = self.slo.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        """Strict decode: unknown keys raise :class:`ConfigError`.

        >>> EngineConfig.from_dict({"dataset": "mas", "capa": 5})
        Traceback (most recent call last):
            ...
        repro.errors.ConfigError: unknown engine config field(s): capa; allowed: artifact_version, artifacts, backend, cache_size, control_plane_cache, control_plane_feedback, control_plane_idempotency, control_plane_path, dataset, drift_threshold, idempotency_ttl_seconds, journal_dir, journal_segment_bytes, journal_segments, kappa, lam, learn_batch_size, log_path, log_source, max_configurations, max_workers, obscurity, simulate_parse_failures, slo, slow_query_ms, trace_keep, tracing, use_log_joins, use_log_keywords
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"engine config must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown engine config field(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(known))}"
            )
        if isinstance(data.get("slo"), dict):
            data = dict(data)
            data["slo"] = SLOPolicy.from_dict(data["slo"])
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"invalid engine config: {exc}") from exc

    @classmethod
    def from_file(cls, path: str | Path) -> "EngineConfig":
        """Load a JSON config file.

        >>> import tempfile
        >>> with tempfile.TemporaryDirectory() as root:
        ...     saved = EngineConfig(dataset="imdb").save(root + "/e.json")
        ...     EngineConfig.from_file(saved).dataset
        'imdb'
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise ConfigError(f"cannot read engine config {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"engine config {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        """Write the config as JSON; the file round-trips via from_file."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True))
        return path

    def fingerprint(self) -> str:
        """Stable content hash of the configuration.

        >>> EngineConfig().fingerprint() == EngineConfig().fingerprint()
        True
        >>> EngineConfig().fingerprint() == EngineConfig(kappa=9).fingerprint()
        False
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
