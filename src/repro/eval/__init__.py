"""Evaluation harness: the paper's Section VII protocol.

4-fold cross-validation where the query log is the gold SQL of the three
training folds; KW (keyword mapping) and FQ (full query) top-1 accuracy
with the tie-as-incorrect rule; reporting helpers that print the paper's
tables and figures.
"""

from repro.eval.folds import split_folds
from repro.eval.harness import EvalConfig, SystemResult, evaluate_system
from repro.eval.metrics import fq_correct, kw_correct
from repro.eval.reporting import format_rows

__all__ = [
    "EvalConfig",
    "SystemResult",
    "evaluate_system",
    "format_rows",
    "fq_correct",
    "kw_correct",
    "split_folds",
]
