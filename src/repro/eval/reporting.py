"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Sequence


def format_rows(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table (headers + rows)."""
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [
        max(len(row[column]) for row in table)
        for column in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def percentage(value: float) -> str:
    """Format an accuracy fraction the way the paper prints it."""
    return f"{100.0 * value:.1f}"


def format_kv(pairs: Sequence[tuple[str, object]]) -> str:
    """Render aligned ``key  value`` lines (serving/CLI status output)."""
    if not pairs:
        return ""
    width = max(len(str(key)) for key, _ in pairs)
    return "\n".join(
        f"{str(key).ljust(width)}  {value}" for key, value in pairs
    )
