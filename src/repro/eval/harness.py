"""Cross-validated evaluation of the four systems (Section VII).

For each of the 4 trials, the SQL query log is the *gold SQL of the three
training folds* — exactly the paper's setup — and the held-out fold is
translated.  Results aggregate across trials.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fragments import Obscurity
from repro.core.keyword_mapper import ScoringParams
from repro.core.log import QueryLog
from repro.core.templar import Templar
from repro.datasets.base import BenchmarkDataset, BenchmarkItem
from repro.embedding.model import CompositeModel, LexiconModel
from repro.errors import ReproError
from repro.eval.folds import split_folds, train_test_split
from repro.eval.metrics import fq_correct, kw_correct
from repro.nlidb.nalir import NalirNLIDB
from repro.nlidb.nalir_parser import NalirParser
from repro.nlidb.pipeline import PipelineNLIDB

SYSTEM_NAMES = ("NaLIR", "NaLIR+", "Pipeline", "Pipeline+")


@dataclass(frozen=True)
class EvalConfig:
    """Evaluation parameters; defaults mirror the paper's headline setup."""

    kappa: int = 5
    lam: float = 0.8
    obscurity: Obscurity = Obscurity.NO_CONST_OP
    use_log_keywords: bool = True
    use_log_joins: bool = True
    folds: int = 4
    fold_seed: int = 17
    max_configurations: int = 10

    def scoring_params(self) -> ScoringParams:
        return ScoringParams(kappa=self.kappa, lam=self.lam)


@dataclass
class ItemOutcome:
    item_id: str
    family: str
    kw: bool
    fq: bool
    top_sql: str | None


@dataclass
class SystemResult:
    """Aggregated accuracy of one system on one dataset."""

    system: str
    dataset: str
    outcomes: list[ItemOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def kw_accuracy(self) -> float:
        return sum(o.kw for o in self.outcomes) / self.total if self.total else 0.0

    @property
    def fq_accuracy(self) -> float:
        return sum(o.fq for o in self.outcomes) / self.total if self.total else 0.0

    def failures(self, metric: str = "fq") -> list[ItemOutcome]:
        return [
            o for o in self.outcomes if not (o.kw if metric == "kw" else o.fq)
        ]

    def family_breakdown(self, metric: str = "fq") -> dict[str, tuple[int, int]]:
        """family -> (correct, total), for error analysis."""
        breakdown: dict[str, list[int]] = {}
        for outcome in self.outcomes:
            entry = breakdown.setdefault(outcome.family, [0, 0])
            entry[1] += 1
            entry[0] += int(outcome.kw if metric == "kw" else outcome.fq)
        return {k: (v[0], v[1]) for k, v in sorted(breakdown.items())}


def _build_system(
    name: str,
    dataset: BenchmarkDataset,
    log: QueryLog,
    config: EvalConfig,
):
    """Instantiate one of the four compared systems for a trial."""
    database = dataset.database
    composite = CompositeModel(dataset.lexicon)
    if name == "Pipeline":
        return PipelineNLIDB(
            database, composite, None,
            max_configurations=config.max_configurations,
            params=config.scoring_params(),
        )
    if name == "Pipeline+":
        templar = Templar(
            database, composite, log,
            obscurity=config.obscurity,
            params=config.scoring_params(),
            use_log_keywords=config.use_log_keywords,
            use_log_joins=config.use_log_joins,
        )
        return PipelineNLIDB(
            database, composite, templar,
            max_configurations=config.max_configurations,
        )
    parser = NalirParser(database, dataset.schema_terms)
    wordnet_like = LexiconModel(dataset.nalir_model_lexicon())
    if name == "NaLIR":
        return NalirNLIDB(
            database, wordnet_like, parser, None,
            max_configurations=config.max_configurations,
            params=config.scoring_params(),
        )
    if name == "NaLIR+":
        templar = Templar(
            database, composite, log,
            obscurity=config.obscurity,
            params=config.scoring_params(),
            use_log_keywords=config.use_log_keywords,
            use_log_joins=config.use_log_joins,
        )
        return NalirNLIDB(
            database, wordnet_like, parser, templar,
            max_configurations=config.max_configurations,
        )
    raise ReproError(f"unknown system {name!r}; choose from {SYSTEM_NAMES}")


def _translate(system, item: BenchmarkItem):
    if isinstance(system, NalirNLIDB):
        return system.translate_nlq(item.nlq)
    return system.translate(item.keywords)


def evaluate_system(
    dataset: BenchmarkDataset,
    system_name: str,
    config: EvalConfig | None = None,
) -> SystemResult:
    """Run the full 4-fold cross-validated evaluation of one system."""
    config = config or EvalConfig()
    items = dataset.usable_items()
    folds = split_folds(items, config.folds, config.fold_seed)
    result = SystemResult(system=system_name, dataset=dataset.name)
    catalog = dataset.database.catalog

    for trial in range(config.folds):
        train, test = train_test_split(folds, trial)
        log = QueryLog([item.gold_sql for item in train])
        system = _build_system(system_name, dataset, log, config)
        for item in test:
            try:
                results = _translate(system, item)
            except ReproError:
                results = []
            outcome = ItemOutcome(
                item_id=item.item_id,
                family=item.family,
                kw=kw_correct(item, results, catalog),
                fq=fq_correct(item, results, catalog),
                top_sql=results[0].sql if results else None,
            )
            result.outcomes.append(outcome)
    return result
