"""Cross-validated evaluation of the registered systems (Section VII).

For each of the 4 trials, the SQL query log is the *gold SQL of the three
training folds* — exactly the paper's setup — and the held-out fold is
translated.  Results aggregate across trials.

Systems are resolved through :mod:`repro.nlidb.registry`, so any backend
registered there — including ones added outside this repo — is evaluable
by name; ``SYSTEM_NAMES`` is derived from the registry.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.core.fragments import Obscurity
from repro.core.keyword_mapper import ScoringParams
from repro.core.log import QueryLog
from repro.core.templar import Templar
from repro.datasets.base import BenchmarkDataset
from repro.embedding.model import CompositeModel
from repro.errors import ReproError
from repro.eval.folds import split_folds, train_test_split
from repro.eval.metrics import fq_correct, kw_correct
from repro.nlidb.base import NLIDB
from repro.nlidb.registry import (
    BackendSpec,
    build_backend,
    display_names,
    get_backend,
)

#: Display names of every registered system — ("NaLIR", "NaLIR+",
#: "Pipeline", "Pipeline+") for the paper's four, plus any plugins
#: registered before this module is imported.
SYSTEM_NAMES = display_names()


@dataclass(frozen=True)
class EvalConfig:
    """Evaluation parameters; defaults mirror the paper's headline setup."""

    kappa: int = 5
    lam: float = 0.8
    obscurity: Obscurity = Obscurity.NO_CONST_OP
    use_log_keywords: bool = True
    use_log_joins: bool = True
    folds: int = 4
    fold_seed: int = 17
    max_configurations: int = 10

    def scoring_params(self) -> ScoringParams:
        return ScoringParams(kappa=self.kappa, lam=self.lam)


@dataclass
class ItemOutcome:
    item_id: str
    family: str
    kw: bool
    fq: bool
    top_sql: str | None


@dataclass
class SystemResult:
    """Aggregated accuracy of one system on one dataset."""

    system: str
    dataset: str
    outcomes: list[ItemOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def kw_accuracy(self) -> float:
        return sum(o.kw for o in self.outcomes) / self.total if self.total else 0.0

    @property
    def fq_accuracy(self) -> float:
        return sum(o.fq for o in self.outcomes) / self.total if self.total else 0.0

    def failures(self, metric: str = "fq") -> list[ItemOutcome]:
        return [
            o for o in self.outcomes if not (o.kw if metric == "kw" else o.fq)
        ]

    def family_breakdown(self, metric: str = "fq") -> dict[str, tuple[int, int]]:
        """family -> (correct, total), for error analysis."""
        breakdown: dict[str, list[int]] = {}
        for outcome in self.outcomes:
            entry = breakdown.setdefault(outcome.family, [0, 0])
            entry[1] += 1
            entry[0] += int(outcome.kw if metric == "kw" else outcome.fq)
        return {k: (v[0], v[1]) for k, v in sorted(breakdown.items())}


def _engine_config(spec: BackendSpec, dataset_name: str, config: EvalConfig):
    """The declarative engine description for one evaluation trial."""
    from repro.api.config import EngineConfig

    return EngineConfig(
        dataset=dataset_name,
        backend=spec.name,
        # The fold log is injected explicitly per trial.
        log_source="none",
        obscurity=config.obscurity.value,
        kappa=config.kappa,
        lam=config.lam,
        use_log_keywords=config.use_log_keywords,
        use_log_joins=config.use_log_joins,
        max_configurations=config.max_configurations,
        # The paper-faithful protocol keeps the parser's documented
        # failure modes, translates one item at a time, and never learns
        # from its own output mid-trial.
        simulate_parse_failures=True,
        max_workers=1,
    )


def _trial_engine(
    spec: BackendSpec,
    dataset: BenchmarkDataset,
    log: QueryLog,
    config: EvalConfig,
):
    """One assembled engine for a trial — the same path every frontend uses."""
    from repro.api.engine import Engine

    return Engine.from_config(
        _engine_config(spec, dataset.name, config),
        dataset=dataset,
        query_log=log if spec.augmented else None,
    )


def _build_system(
    name: str,
    dataset: BenchmarkDataset,
    log: QueryLog,
    config: EvalConfig,
) -> NLIDB:
    """Deprecated: hard-coded system dispatch, kept as a thin shim.

    Use :func:`repro.nlidb.registry.build_backend` for a bare system, or
    ``repro.api.Engine.from_config`` for a full stack.
    """
    warnings.warn(
        "_build_system's hard-coded system dispatch is deprecated; "
        "resolve backends through repro.nlidb.registry or build a full "
        "stack with repro.api.Engine.from_config",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = get_backend(name)
    templar = None
    if spec.augmented:
        templar = Templar(
            dataset.database,
            CompositeModel(dataset.lexicon),
            log,
            obscurity=config.obscurity,
            params=config.scoring_params(),
            use_log_keywords=config.use_log_keywords,
            use_log_joins=config.use_log_joins,
        )
    return build_backend(
        spec.name,
        dataset,
        templar,
        max_configurations=config.max_configurations,
        params=config.scoring_params(),
        simulate_parse_failures=True,
    )


def evaluate_system(
    dataset: BenchmarkDataset,
    system_name: str,
    config: EvalConfig | None = None,
) -> SystemResult:
    """Run the full 4-fold cross-validated evaluation of one system.

    ``system_name`` is resolved through the backend registry (canonical
    or display name, case-insensitive); each trial's system is assembled
    by ``Engine.from_config`` — the same construction path the CLI, HTTP
    endpoint and examples use.  NLQ-parsing backends receive the raw NLQ
    (routed through the engine's failure-faithful parser); the others
    receive the hand-parsed keywords.
    """
    config = config or EvalConfig()
    spec = get_backend(system_name)
    items = dataset.usable_items()
    folds = split_folds(items, config.folds, config.fold_seed)
    result = SystemResult(system=spec.display_name, dataset=dataset.name)
    catalog = dataset.database.catalog

    for trial in range(config.folds):
        train, test = train_test_split(folds, trial)
        log = QueryLog([item.gold_sql for item in train])
        with _trial_engine(spec, dataset, log, config) as engine:
            for item in test:
                request = item.nlq if spec.parses_nlq else item.keywords
                try:
                    results = engine.translate(request).results
                except ReproError:
                    results = []
                outcome = ItemOutcome(
                    item_id=item.item_id,
                    family=item.family,
                    kw=kw_correct(item, results, catalog),
                    fq=fq_correct(item, results, catalog),
                    top_sql=results[0].sql if results else None,
                )
                result.outcomes.append(outcome)
    return result
