"""Cross-validation fold splitting (Section VII-A4)."""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


def split_folds(items: Sequence[T], folds: int = 4, seed: int = 17) -> list[list[T]]:
    """Randomly split ``items`` into ``folds`` near-equal folds.

    The split is seeded and deterministic.  Fold sizes differ by at most
    one element.
    """
    if folds < 2:
        raise ReproError("need at least 2 folds")
    if len(items) < folds:
        raise ReproError(f"cannot split {len(items)} items into {folds} folds")
    shuffled = list(items)
    random.Random(seed).shuffle(shuffled)
    result: list[list[T]] = [[] for _ in range(folds)]
    for index, item in enumerate(shuffled):
        result[index % folds].append(item)
    return result


def train_test_split(
    fold_sets: list[list[T]], test_index: int
) -> tuple[list[T], list[T]]:
    """(training items, test items) for trial ``test_index``."""
    if not 0 <= test_index < len(fold_sets):
        raise ReproError(f"fold index {test_index} out of range")
    train: list[T] = []
    for index, fold in enumerate(fold_sets):
        if index != test_index:
            train.extend(fold)
    return train, list(fold_sets[test_index])
