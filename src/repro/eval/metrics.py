"""KW and FQ correctness checks (Section VII-A5).

* **FQ** — the top-1 SQL must be equivalent to the gold annotation
  (canonical-form comparison); a top-1 score tie between *different*
  queries counts as incorrect.
* **KW** — every non-relation keyword must be mapped correctly.  We check
  the top configuration's non-FROM fragments against the gold SQL's
  fragments (at Full obscurity), in both directions, ignoring GROUP BY
  fragments (which the SQL builder derives rather than maps).
"""

from __future__ import annotations

from repro.core.fragments import FragmentContext, Obscurity, fragments_of_sql
from repro.datasets.base import BenchmarkItem
from repro.db.catalog import Catalog
from repro.errors import ReproError
from repro.nlidb.base import TranslationResult
from repro.sql.canonical import queries_equivalent


def gold_fragment_keys(item: BenchmarkItem, catalog: Catalog) -> set[str]:
    """Non-FROM, non-GROUP-BY fragment keys of the gold SQL (Full level)."""
    fragments = fragments_of_sql(item.gold_sql, catalog)
    return {
        fragment.key(Obscurity.FULL)
        for fragment in fragments
        if fragment.context
        not in (FragmentContext.FROM, FragmentContext.GROUP_BY)
    }


def kw_correct(
    item: BenchmarkItem,
    results: list[TranslationResult],
    catalog: Catalog,
) -> bool:
    """True when the top configuration maps all non-relation keywords right."""
    if not results:
        return False
    try:
        gold_keys = gold_fragment_keys(item, catalog)
    except ReproError:
        return False
    top = results[0]
    config_keys = top.configuration.fragment_key_set(Obscurity.FULL)
    return config_keys == gold_keys


def fq_correct(
    item: BenchmarkItem,
    results: list[TranslationResult],
    catalog: Catalog,
    tie_tolerance: float = 1e-9,
) -> bool:
    """True when the top-1 SQL matches gold and is not tied with a rival."""
    if not results:
        return False
    top = results[0]
    if not queries_equivalent(top.query, item.gold_sql, catalog):
        return False
    # Tie rule: a different query tied for first place voids the answer.
    for other in results[1:]:
        if not top.ties_with(other, tie_tolerance):
            break
        if not queries_equivalent(top.query, other.query, catalog):
            return False
    return True
