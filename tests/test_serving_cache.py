"""Unit tests for the serving LRU cache and telemetry registry."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServingError
from repro.serving.cache import LRUCache
from repro.serving.telemetry import MetricsRegistry, percentile


class TestLRUCache:
    def test_get_put_and_stats(self):
        cache = LRUCache(maxsize=4, name="test")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1
        assert stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a": "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats().evictions == 1

    def test_put_existing_key_updates_without_eviction(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats().evictions == 0

    def test_get_or_compute_runs_factory_once_per_key(self):
        cache = LRUCache(maxsize=4)
        calls = []

        def factory():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", factory) == "value"
        assert cache.get_or_compute("k", factory) == "value"
        assert len(calls) == 1

    def test_cached_empty_list_is_a_hit(self):
        # An NLIDB legitimately returns [] for unmappable keywords; the
        # cache must not confuse that with a miss.
        cache = LRUCache(maxsize=4)
        cache.put("k", [])
        assert cache.get_or_compute("k", lambda: pytest.fail("recomputed")) == []

    def test_clear_keeps_counters(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ServingError):
            LRUCache(maxsize=-1)

    def test_zero_maxsize_disables_caching(self):
        """maxsize=0 is the off-switch (the fuzz harness's cache-off
        engine relies on it): puts are dropped, every get misses."""
        cache = LRUCache(maxsize=0)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0
        assert cache.stats().misses == 1
        assert cache.stats().hits == 0

    def test_concurrent_mixed_access_is_safe(self):
        cache = LRUCache(maxsize=64)
        errors = []

        def worker(base: int) -> None:
            try:
                for i in range(200):
                    cache.put((base, i % 80), i)
                    cache.get((base, (i + 1) % 80))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64


class TestPercentile:
    def test_empty_and_single(self):
        assert percentile([], 95.0) == 0.0
        assert percentile([7.0], 50.0) == 7.0

    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == pytest.approx(2.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("requests")
        metrics.increment("requests", 4)
        assert metrics.counter("requests") == 5
        assert metrics.counter("unknown") == 0

    def test_latency_summary_and_snapshot(self):
        metrics = MetricsRegistry()
        for ms in (1, 2, 3, 4, 100):
            metrics.record_latency("translate", ms / 1000.0)
        summary = metrics.latency_summary("translate")
        assert summary.count == 5
        assert summary.p50_ms == pytest.approx(3.0)
        assert summary.max_ms == pytest.approx(100.0)
        assert summary.p99_ms <= summary.max_ms

        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["latencies"]["translate"]["count"] == 5
        assert "translate" in snapshot["qps"]

    def test_timer_context_manager_records(self):
        metrics = MetricsRegistry()
        with metrics.time("op"):
            pass
        assert metrics.latency_summary("op").count == 1

    def test_qps_counts_recent_samples(self):
        metrics = MetricsRegistry()
        for _ in range(10):
            metrics.record_latency("translate", 0.001)
        assert metrics.qps("translate", window_seconds=60.0) > 0.0

    def test_qps_not_capped_by_ring_eviction(self):
        # A full ring means the retained span is shorter than the window;
        # the rate must be computed over that span, not the full window
        # (otherwise high traffic saturates at maxlen/window).
        metrics = MetricsRegistry(window=16)
        for _ in range(64):
            metrics.record_latency("translate", 0.0001)
        assert metrics.qps("translate", window_seconds=60.0) > 16 / 60.0 * 10

    def test_qps_empty_series_is_zero(self):
        assert MetricsRegistry().qps("never") == 0.0

    def test_latency_series_memory_is_bounded(self):
        # A long-lived gateway must not grow telemetry without bound:
        # each series is a ring buffer of exactly `window` samples.
        metrics = MetricsRegistry(window=8)
        for _ in range(10_000):
            metrics.record_latency("translate", 0.001)
        assert metrics.latency_summary("translate").count == 8
        assert metrics.window == 8

    def test_snapshot_exposes_the_cap(self):
        metrics = MetricsRegistry(window=32)
        metrics.record_latency("translate", 0.001)
        snapshot = metrics.snapshot()
        assert snapshot["latency_window"] == 32

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            MetricsRegistry(window=0)
