"""Tests for the similarity substrate (lexicon + n-gram + composite)."""

import pytest

from repro.embedding import (
    CompositeModel,
    Lexicon,
    LexiconModel,
    NgramHashingModel,
    content_tokens,
    word_tokens,
)
from repro.errors import ReproError


class TestTokenize:
    def test_identifier_splitting(self):
        assert word_tokens("publication_keyword") == ["publication", "keyword"]

    def test_case_folding(self):
        assert word_tokens("Databases Domain") == ["databases", "domain"]

    def test_content_tokens_strip_stopwords(self):
        assert content_tokens("the papers of the domain") == ["papers", "domain"]

    def test_content_tokens_fallback_when_all_stopwords(self):
        assert content_tokens("of the") == ["of", "the"]


class TestLexicon:
    def test_direct_lookup_symmetric(self):
        lexicon = Lexicon({("paper", "journal"): 0.6})
        assert lexicon.lookup("paper", "journal") == 0.6
        assert lexicon.lookup("journal", "paper") == 0.6

    def test_identical_tokens_score_one(self):
        assert Lexicon().lookup("paper", "paper") == 1.0

    def test_stem_equality_scores_one(self):
        assert Lexicon().lookup("papers", "paper") == 1.0

    def test_stemmed_pair_fallback(self):
        lexicon = Lexicon({("paper", "publication"): 0.58})
        # 'papers' stems to 'paper'; 'publications' stems like 'publication'.
        assert lexicon.lookup("papers", "publications") == 0.58

    def test_unknown_pair_is_none(self):
        assert Lexicon().lookup("zebra", "giraffe") is None

    def test_score_bounds_validated(self):
        with pytest.raises(ReproError):
            Lexicon().add("a", "b", 1.5)

    def test_merge_overrides(self):
        base = Lexicon({("a", "b"): 0.3})
        override = Lexicon({("a", "b"): 0.9})
        merged = base.merge(override)
        assert merged.lookup("a", "b") == 0.9
        assert base.lookup("a", "b") == 0.3

    def test_contains(self):
        lexicon = Lexicon({("a", "b"): 0.3})
        assert ("a", "b") in lexicon
        assert ("a", "z") not in lexicon


class TestNgramModel:
    def test_identical_token_is_one(self):
        model = NgramHashingModel()
        assert model.token_similarity("paper", "paper") == 1.0

    def test_morphological_variants_beat_unrelated(self):
        model = NgramHashingModel()
        related = model.token_similarity("paper", "papers")
        unrelated = model.token_similarity("paper", "business")
        assert related > unrelated
        assert related > 0.25

    def test_unrelated_tokens_score_low(self):
        model = NgramHashingModel()
        assert model.token_similarity("paper", "business") < 0.35

    def test_stem_equal_variants_hit_one_via_lexicon(self):
        # The composite stack handles morphology through the lexicon's
        # stem-equality rule; the n-gram model is only the backoff.
        model = CompositeModel(Lexicon())
        assert model.token_similarity("paper", "papers") == 1.0

    def test_deterministic(self):
        first = NgramHashingModel().token_similarity("query", "queries")
        second = NgramHashingModel().token_similarity("query", "queries")
        assert first == second

    def test_bounds(self):
        model = NgramHashingModel()
        for a, b in [("a", "b"), ("xy", "yx"), ("same", "same")]:
            assert 0.0 <= model.token_similarity(a, b) <= 1.0

    def test_vector_is_unit_norm(self):
        vector = NgramHashingModel().vector("publication")
        norm = sum(v * v for v in vector) ** 0.5
        assert norm == pytest.approx(1.0)


class TestLexiconModel:
    def test_known_pair(self):
        model = LexiconModel(Lexicon({("paper", "journal"): 0.6}))
        assert model.token_similarity("paper", "journal") == 0.6

    def test_unknown_pair_gets_default(self):
        model = LexiconModel(Lexicon(), default=0.1)
        assert model.token_similarity("zebra", "giraffe") == 0.1


class TestCompositeModel:
    def test_lexicon_takes_precedence(self):
        model = CompositeModel(Lexicon({("paper", "journal"): 0.6}))
        assert model.token_similarity("paper", "journal") == 0.6

    def test_backoff_for_unknown_pairs(self):
        model = CompositeModel(Lexicon())
        assert model.token_similarity("index", "indexes") > 0.4

    def test_phrase_similarity_identical(self):
        model = CompositeModel(Lexicon())
        assert model.similarity("query optimization", "Query Optimization") == 1.0

    def test_phrase_similarity_partial(self):
        model = CompositeModel(Lexicon({("paper", "publication"): 0.6}))
        score = model.similarity("papers", "publication title")
        assert 0.0 < score < 1.0

    def test_phrase_similarity_empty(self):
        model = CompositeModel(Lexicon())
        assert model.similarity("", "anything") == 0.0
