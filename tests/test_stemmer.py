"""Porter stemmer tests against the algorithm's canonical behaviour."""

import pytest

from repro.db.stemmer import stem, stem_tokens


class TestCanonicalPairs:
    """Examples from Porter's original paper and reference vocabularies."""

    @pytest.mark.parametrize(
        "word,expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valency", "valenc"),
            ("hesitancy", "hesit"),
            ("digitizer", "digit"),
            ("conformably", "conform"),
            ("radically", "radic"),
            ("differently", "differ"),
            ("vilely", "vile"),
            ("analogously", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formality", "formal"),
            ("sensitivity", "sensit"),
            ("sensibility", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electricity", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_pair(self, word, expected):
        assert stem(word) == expected


class TestDomainWords:
    """The stems Templar's full-text search relies on."""

    def test_restaurant_businesses(self):
        # The paper's own example: "restaurant businesses" -> restaur busi.
        assert stem("restaurant") == "restaur"
        assert stem("businesses") == "busi"

    def test_papers_and_paper_share_a_stem(self):
        assert stem("papers") == stem("paper")

    def test_citing_and_cite_share_a_stem(self):
        assert stem("citing") == stem("cite")

    def test_reviews_and_review_share_a_stem(self):
        assert stem("reviews") == stem("review")


class TestEdgeCases:
    def test_short_words_unchanged(self):
        assert stem("a") == "a"
        assert stem("is") == "is"

    def test_lowercasing(self):
        assert stem("TKDE") == "tkde"
        assert stem("Databases") == stem("databases")

    def test_stem_is_idempotent_for_common_words(self):
        for word in ["papers", "relational", "reviews", "directing"]:
            once = stem(word)
            assert stem(once) == once or len(stem(once)) <= len(once)

    def test_stem_tokens_preserves_order(self):
        assert stem_tokens(["papers", "citing"]) == [stem("papers"), stem("citing")]
