"""Round-trip tests for QFG persistence and the serving artifact store."""

from __future__ import annotations

import itertools
import json

import pytest

from repro.core import QueryFragmentGraph, Templar
from repro.datasets.base import BenchmarkDataset
from repro.embedding import CompositeModel, Lexicon
from repro.errors import ArtifactError
from repro.nlidb import PipelineNLIDB
from repro.serving import (
    ArtifactStore,
    catalog_from_dict,
    catalog_to_dict,
    join_graph_from_dict,
    join_graph_to_dict,
)
from repro.schema_graph.graph import JoinGraph


@pytest.fixture()
def mini_qfg(mini_db, mini_log):
    return mini_log.build_qfg(mini_db.catalog)


@pytest.fixture()
def mini_dataset(mini_db, mini_lexicon):
    return BenchmarkDataset(
        name="mini", database=mini_db, items=[], lexicon=mini_lexicon
    )


class TestQfgRoundTrip:
    def test_json_round_trip_identical_scores(self, mini_qfg, tmp_path):
        path = tmp_path / "qfg.json"
        mini_qfg.save(path)
        loaded = QueryFragmentGraph.load(path)

        assert loaded.obscurity is mini_qfg.obscurity
        assert loaded.total_queries == mini_qfg.total_queries
        assert loaded.vertices() == mini_qfg.vertices()
        # Every pairwise Dice score — the signal both consumers read —
        # must survive the round trip exactly.
        for a, b in itertools.combinations(mini_qfg.vertices(), 2):
            assert loaded.dice(a, b) == mini_qfg.dice(a, b)
        assert loaded.fingerprint() == mini_qfg.fingerprint()

    def test_fingerprint_is_insertion_order_independent(self, mini_db, mini_log):
        forward = mini_log.build_qfg(mini_db.catalog)
        reversed_log = type(mini_log)(list(reversed(mini_log.queries)))
        backward = reversed_log.build_qfg(mini_db.catalog)
        assert forward.fingerprint() == backward.fingerprint()

    def test_revision_tracks_added_queries(self, mini_qfg, mini_db):
        from repro.core.fragments import fragments_of_sql

        before = mini_qfg.revision
        fragments = fragments_of_sql(
            "SELECT p.title FROM publication p WHERE p.year > 2005",
            mini_db.catalog,
        )
        mini_qfg.add_query(fragments)
        assert mini_qfg.revision == before + 1

    def test_snapshot_is_independent(self, mini_qfg, mini_db):
        from repro.core.fragments import fragments_of_sql

        snapshot = mini_qfg.snapshot()
        fragments = fragments_of_sql(
            "SELECT j.name FROM journal j", mini_db.catalog
        )
        mini_qfg.add_query(fragments)
        assert snapshot.total_queries == mini_qfg.total_queries - 1
        assert snapshot.fingerprint() != mini_qfg.fingerprint()


class TestComponentRoundTrips:
    def test_lexicon_round_trip_preserves_lookups(self, mini_lexicon):
        loaded = Lexicon.from_dict(mini_lexicon.to_dict())
        assert len(loaded) == len(mini_lexicon)
        for a, b in (("paper", "journal"), ("papers", "publications"),
                     ("after", "year"), ("paper", "nonsense")):
            assert loaded.lookup(a, b) == mini_lexicon.lookup(a, b)

    def test_catalog_round_trip(self, mini_db):
        catalog = mini_db.catalog
        loaded = catalog_from_dict(catalog_to_dict(catalog))
        assert loaded.table_names == catalog.table_names
        assert loaded.stats() == catalog.stats()
        for name in catalog.table_names:
            original, copy = catalog.table(name), loaded.table(name)
            assert copy.column_names == original.column_names
            assert copy.primary_key == original.primary_key
            assert copy.display_column == original.display_column
        assert [str(fk) for fk in loaded.foreign_keys] == [
            str(fk) for fk in catalog.foreign_keys
        ]

    def test_join_graph_round_trip(self, mini_db):
        graph = JoinGraph.from_catalog(mini_db.catalog)
        loaded = join_graph_from_dict(join_graph_to_dict(graph))
        assert loaded.instances == graph.instances
        assert [str(e) for e in loaded.edges] == [str(e) for e in graph.edges]

    def test_malformed_payloads_raise_artifact_error(self):
        with pytest.raises(ArtifactError):
            catalog_from_dict({"tables": [{"name": "x"}], "foreign_keys": []})
        with pytest.raises(ArtifactError):
            join_graph_from_dict({"instances": {}, "edges": [{"source": "a"}]})


class TestArtifactStore:
    def test_compile_load_round_trip(self, mini_dataset, mini_log, tmp_path):
        store = ArtifactStore(tmp_path)
        compiled = store.compile(mini_dataset, mini_log)
        loaded = store.load("mini")

        assert loaded.version == compiled.version
        assert loaded.qfg.fingerprint() == compiled.qfg.fingerprint()
        assert loaded.catalog.stats() == mini_dataset.database.catalog.stats()
        assert len(loaded.lexicon) == len(mini_dataset.lexicon)
        assert loaded.manifest["counts"]["log_queries"] == len(mini_log)

    def test_recompiling_same_log_is_idempotent(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        first = store.compile(mini_dataset, mini_log)
        second = store.compile(mini_dataset, mini_log)
        assert first.version == second.version
        assert store.versions("mini") == [first.version]

    def test_versions_are_immutable(self, mini_dataset, mini_log, tmp_path):
        store = ArtifactStore(tmp_path)
        store.compile(mini_dataset, mini_log, version="pinned")
        mini_dataset.lexicon.add("paper", "manuscript", 0.8)
        with pytest.raises(ArtifactError, match="immutable"):
            store.compile(mini_dataset, mini_log, version="pinned")

    def test_idempotent_recompile_keeps_latest_pointer(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        store.compile(mini_dataset, mini_log, version="v1")
        newest = store.compile(mini_dataset, mini_log)  # content-derived id
        store.compile(mini_dataset, mini_log, version="v1")  # no-op rebuild
        assert (tmp_path / "mini" / "LATEST").read_text() == newest.version

    def test_lexicon_change_mints_new_version(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        old = store.compile(mini_dataset, mini_log)
        mini_dataset.lexicon.add("paper", "article", 0.9)
        new = store.compile(mini_dataset, mini_log)
        # Same log, different lexicon: a pinned version must never be
        # silently overwritten in place.
        assert new.version != old.version
        assert store.load("mini", old.version).manifest["counts"][
            "lexicon_entries"
        ] < new.manifest["counts"]["lexicon_entries"]

    def test_latest_resolution_after_log_growth(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        old = store.compile(mini_dataset, mini_log)
        mini_log.add("SELECT a.name FROM author a")
        new = store.compile(mini_dataset, mini_log)
        assert old.version != new.version
        assert store.load("mini").version == new.version
        assert store.load("mini", old.version).version == old.version

    def test_missing_dataset_has_actionable_error(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactError, match="repro warmup"):
            store.load("mas")

    def test_hostile_version_ids_rejected(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        for bad in ("LATEST", "latest", "../escape", "a/b", "", ".hidden"):
            with pytest.raises(ArtifactError, match="version id"):
                store.compile(mini_dataset, mini_log, version=bad)
        with pytest.raises(ArtifactError, match="version id"):
            store.load("mini", "../escape")
        assert not (tmp_path.parent / "escape").exists()

    def test_unknown_version_rejected(self, mini_dataset, mini_log, tmp_path):
        store = ArtifactStore(tmp_path)
        store.compile(mini_dataset, mini_log)
        with pytest.raises(ArtifactError, match="not found"):
            store.load("mini", "deadbeef0000")

    def test_corrupt_sibling_manifest_does_not_break_resolution(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        good = store.compile(mini_dataset, mini_log)
        broken = tmp_path / "mini" / "halfwritten"
        broken.mkdir()
        (broken / "manifest.json").write_text("{truncated")
        nulled = tmp_path / "mini" / "nullcreated"
        nulled.mkdir()
        (nulled / "manifest.json").write_text('{"created": null}')
        (tmp_path / "mini" / "LATEST").unlink()
        assert store.versions("mini") == [good.version]
        assert store.load("mini").version == good.version

    def test_manifest_missing_keys_is_artifact_error(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        compiled = store.compile(mini_dataset, mini_log)
        manifest_path = compiled.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["dataset"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="missing required key"):
            store.load("mini", compiled.version)

    def test_stale_latest_pointer_falls_back_to_scan(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        good = store.compile(mini_dataset, mini_log)
        (tmp_path / "mini" / "LATEST").write_text("deleted-version")
        assert store.load("mini").version == good.version

    def test_corrupt_artifact_detected(self, mini_dataset, mini_log, tmp_path):
        store = ArtifactStore(tmp_path)
        compiled = store.compile(mini_dataset, mini_log)
        qfg_path = compiled.path / "qfg.json"
        payload = json.loads(qfg_path.read_text())
        payload["total_queries"] = 999
        qfg_path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="corrupt"):
            store.load("mini")

    def test_missing_artifact_file_detected(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        compiled = store.compile(mini_dataset, mini_log)
        (compiled.path / "lexicon.json").unlink()
        with pytest.raises(ArtifactError, match="missing"):
            store.load("mini")

    def test_future_format_version_rejected(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        compiled = store.compile(mini_dataset, mini_log)
        manifest_path = compiled.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="format"):
            store.load("mini")

    def test_schema_mismatch_rejected_at_build(
        self, mini_dataset, mini_log, tmp_path
    ):
        from repro.db import Column, ColumnType, Database, TableSchema
        from repro.db.catalog import Catalog

        store = ArtifactStore(tmp_path)
        artifacts = store.compile(mini_dataset, mini_log)
        other = Database("other", Catalog())
        other.create_table(
            TableSchema("venue", [Column("vid", ColumnType.INTEGER)],
                        primary_key="vid")
        )
        with pytest.raises(ArtifactError, match="different schema"):
            artifacts.build_templar(other)

    def test_artifact_templar_translates_identically(
        self, mini_dataset, mini_log, mini_model, tmp_path
    ):
        """A from-artifacts Templar scores exactly like a from-log one."""
        db = mini_dataset.database
        rebuilt = Templar(db, mini_model, mini_log)
        direct = PipelineNLIDB(db, mini_model, rebuilt)

        store = ArtifactStore(tmp_path)
        artifacts = store.compile(mini_dataset, mini_log)
        restored = artifacts.build_templar(db, mini_model)
        served = PipelineNLIDB(db, mini_model, restored)

        from repro.core import Keyword, KeywordMetadata
        from repro.core.fragments import FragmentContext

        requests = [
            [
                Keyword("papers", KeywordMetadata(FragmentContext.SELECT)),
                Keyword(
                    "after 2000",
                    KeywordMetadata(FragmentContext.WHERE, comparison_op=">"),
                ),
            ],
            [
                Keyword("papers", KeywordMetadata(FragmentContext.SELECT)),
                Keyword("TKDE", KeywordMetadata(FragmentContext.WHERE)),
            ],
        ]
        for keywords in requests:
            expected = [(r.sql, r.config_score) for r in direct.translate(keywords)]
            actual = [(r.sql, r.config_score) for r in served.translate(keywords)]
            assert actual == expected


class TestCandidateIndexArtifact:
    def test_compile_emits_and_load_restores_index(
        self, mini_dataset, mini_log, tmp_path
    ):
        from repro.core.candidate_index import CandidateIndex

        store = ArtifactStore(tmp_path)
        artifacts = store.compile(mini_dataset, mini_log)
        assert (artifacts.path / "candidate_index.json").is_file()
        assert artifacts.candidate_index is not None
        live = CandidateIndex.from_database(mini_dataset.database)
        assert artifacts.candidate_index.to_dict() == live.to_dict()
        # The index checksum is covered by the manifest.
        assert "candidate_index.json" in artifacts.manifest["checksums"]

    def test_build_templar_injects_stored_index(
        self, mini_dataset, mini_log, mini_model, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        artifacts = store.compile(mini_dataset, mini_log)
        templar = artifacts.build_templar(mini_dataset.database, mini_model)
        assert templar.keyword_mapper._index is artifacts.candidate_index

    def test_pre_index_version_still_loads(
        self, mini_dataset, mini_log, tmp_path
    ):
        """A version compiled before the index artifact existed serves."""
        store = ArtifactStore(tmp_path)
        artifacts = store.compile(mini_dataset, mini_log, version="old")
        target = artifacts.path
        (target / "candidate_index.json").unlink()
        manifest = json.loads((target / "manifest.json").read_text())
        del manifest["checksums"]["candidate_index.json"]
        (target / "manifest.json").write_text(json.dumps(manifest))

        loaded = store.load("mini", "old")
        assert loaded.candidate_index is None
        templar = loaded.build_templar(mini_dataset.database)
        # The mapper rebuilds the index lazily instead.
        assert templar.candidate_index is not None

    def test_corrupt_index_artifact_rejected(
        self, mini_dataset, mini_log, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        artifacts = store.compile(mini_dataset, mini_log)
        index_file = artifacts.path / "candidate_index.json"
        index_file.write_text(index_file.read_text() + " ")
        with pytest.raises(ArtifactError, match="corrupt"):
            store.load("mini", artifacts.version)

    def test_drifted_rows_discard_stored_index(
        self, mini_dataset, mini_log, mini_model, tmp_path
    ):
        """Rows changed since compile: the stale index must not serve."""
        store = ArtifactStore(tmp_path)
        artifacts = store.compile(mini_dataset, mini_log)
        db = mini_dataset.database
        db.insert("journal", (9, "Post-compile Journal"))
        assert artifacts.candidate_index.matches_database(db) is False
        templar = artifacts.build_templar(db, mini_model)
        # The injected stale index was dropped; the lazily rebuilt one
        # sees the new row.
        assert templar.keyword_mapper._index is None
        hits = templar.candidate_index.search_column(
            "journal", "name", ["post", "compile"]
        )
        assert hits == ["Post-compile Journal"]

    def test_matching_rows_keep_stored_index(
        self, mini_dataset, mini_log, mini_model, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        artifacts = store.compile(mini_dataset, mini_log)
        db = mini_dataset.database
        assert artifacts.candidate_index.matches_database(db) is True
        templar = artifacts.build_templar(db, mini_model)
        assert templar.keyword_mapper._index is artifacts.candidate_index
