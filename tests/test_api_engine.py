"""Engine / EngineConfig: the unified entry point and its wire format."""

from __future__ import annotations

import argparse
import json
import threading
import urllib.request

import pytest

from repro.api import Engine, EngineConfig, TranslationRequest
from repro.core import Keyword, KeywordMetadata, QueryLog, Templar
from repro.core.fragments import FragmentContext
from repro.datasets.base import BenchmarkDataset
from repro.embedding import CompositeModel
from repro.errors import ConfigError, ReproError, ServingError
from repro.nlidb import PipelineNLIDB
from repro.serving import make_server
from repro.serving.wire import keyword_from_dict

from tests.conftest import build_mini_db, build_mini_lexicon, build_mini_log


def mini_dataset() -> BenchmarkDataset:
    return BenchmarkDataset(
        name="mini",
        database=build_mini_db(),
        items=[],
        lexicon=build_mini_lexicon(),
        schema_terms=["papers", "journals", "authors"],
    )


def mini_engine(**overrides) -> Engine:
    config = EngineConfig(
        dataset="mini", backend="pipeline+", log_source="none",
        **overrides,
    )
    return Engine.from_config(
        config, dataset=mini_dataset(), query_log=build_mini_log()
    )


KEYWORDS = (
    Keyword("papers", KeywordMetadata(FragmentContext.SELECT)),
    Keyword(
        "after 2000",
        KeywordMetadata(FragmentContext.WHERE, comparison_op=">"),
    ),
)


class TestEngineConfig:
    def test_round_trip_identity(self):
        config = EngineConfig(dataset="yelp", kappa=7, lam=0.5,
                              learn_batch_size=16)
        assert EngineConfig.from_dict(config.to_dict()) == config
        assert EngineConfig.from_dict(config.to_dict()).fingerprint() == \
            config.fingerprint()

    def test_file_round_trip(self, tmp_path):
        config = EngineConfig(dataset="imdb", backend="nalir+")
        path = config.save(tmp_path / "engine.json")
        assert EngineConfig.from_file(path) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="datase"):
            EngineConfig.from_dict({"datase": "mas"})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError, match="log_source"):
            EngineConfig(log_source="s3")
        with pytest.raises(ConfigError, match="log_path"):
            EngineConfig(log_source="file")
        with pytest.raises(ConfigError, match="artifacts"):
            EngineConfig(log_source="artifacts")
        with pytest.raises(ConfigError, match="artifact_version"):
            EngineConfig(artifact_version="v1")
        with pytest.raises(ConfigError, match="lam"):
            EngineConfig(lam=1.5)
        with pytest.raises(ConfigError, match="obscurity"):
            EngineConfig(obscurity="Opaque")
        # Set-but-unused log fields fail loudly rather than silently
        # training on the wrong log.
        with pytest.raises(ConfigError, match="log_path"):
            EngineConfig(log_path="prod.sql")
        with pytest.raises(ConfigError, match="artifacts"):
            EngineConfig(artifacts="./store")

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            EngineConfig.from_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            EngineConfig.from_file(bad)


class TestEngineTranslate:
    def test_matches_direct_nlidb(self):
        """The Engine is a facade, never a rescorer."""
        db = build_mini_db()
        model = CompositeModel(build_mini_lexicon())
        templar = Templar(db, model, build_mini_log())
        direct = PipelineNLIDB(db, model, templar)
        expected = [
            (r.sql, r.config_score, r.join_score)
            for r in direct.translate(list(KEYWORDS))
        ]

        with mini_engine() as engine:
            response = engine.translate(KEYWORDS)
            actual = [
                (r.sql, r.config_score, r.join_score)
                for r in response.results
            ]
        assert actual == expected
        assert expected

    def test_raw_nlq_equals_parsed_keywords(self):
        with mini_engine() as engine:
            by_string = engine.translate("return the papers after 2000")
            by_keywords = engine.translate(KEYWORDS)
            assert by_string.sql == by_keywords.sql
            assert by_string.keywords  # the parse is surfaced
            assert by_string.timings_ms["parse"] >= 0.0

    def test_request_union_payload_and_request_object(self):
        payload = {
            "keywords": [
                {"text": "papers", "context": "SELECT"},
                {"text": "after 2000", "context": "WHERE",
                 "comparison_op": ">"},
            ],
            "limit": 1,
        }
        with mini_engine() as engine:
            from_payload = engine.translate(payload)
            from_request = engine.translate(
                TranslationRequest(keywords=KEYWORDS, limit=1)
            )
            assert from_payload.sql == from_request.sql
            body = from_payload.to_payload()
        assert body["count"] >= 1
        assert len(body["results"]) == 1
        assert body["provenance"]["backend"] == "Pipeline+"
        assert body["provenance"]["dataset"] == "mini"
        assert set(body["timings_ms"]) >= {"parse", "translate", "total"}

    def test_unparseable_nlq_raises_serving_error(self):
        with mini_engine() as engine:
            with pytest.raises(ServingError, match="could not parse"):
                engine.translate("xyzzy gibberish")

    def test_translate_batch_matches_singles(self):
        requests = [
            KEYWORDS,
            "return the papers after 2000",
            [Keyword("journals", KeywordMetadata(FragmentContext.SELECT))],
        ]
        with mini_engine() as engine:
            singles = [engine.translate(r).sql for r in requests]
            batch = engine.translate_batch(requests)
            assert [r.sql for r in batch] == singles
            # Batch responses keep the documented timing keys and mark
            # themselves as batch-level numbers.
            for response in batch:
                assert set(response.timings_ms) >= {
                    "parse", "translate", "total", "batch_size"
                }
                assert response.timings_ms["batch_size"] == len(requests)

    def test_explain_decomposes_top_configuration(self):
        with mini_engine() as engine:
            rendered = engine.explain(KEYWORDS).render()
        assert "Score_σ" in rendered

    def test_explain_never_observes(self):
        """explain is a pure diagnostic: observe flags are ignored."""
        with mini_engine() as engine:
            engine.explain(TranslationRequest(keywords=KEYWORDS, observe=True))
            assert engine.service.pending_observations == 0

    def test_nlq_backend_keeps_its_own_parser(self):
        config = EngineConfig(dataset="mini", backend="nalir")
        with Engine.from_config(config, dataset=mini_dataset()) as engine:
            assert engine.parser is engine.nlidb.parser

    def test_observe_and_absorb_grow_the_qfg(self):
        with mini_engine() as engine:
            before = engine.templar.qfg.total_queries
            engine.observe(
                "SELECT p.title FROM publication p WHERE p.year > 1999"
            )
            assert engine.absorb_pending() == 1
            assert engine.templar.qfg.total_queries == before + 1

    def test_baseline_backend_has_no_templar(self):
        config = EngineConfig(dataset="mini", backend="pipeline")
        engine = Engine.from_config(config, dataset=mini_dataset())
        with engine:
            assert engine.templar is None
            assert engine.translate(KEYWORDS).results

    def test_observe_without_templar_rejected_before_translating(self):
        config = EngineConfig(dataset="mini", backend="pipeline")
        with Engine.from_config(config, dataset=mini_dataset()) as engine:
            with pytest.raises(ServingError, match="Templar"):
                engine.translate(KEYWORDS, observe=True)
            with pytest.raises(ServingError, match="Templar"):
                engine.translate_batch(
                    [TranslationRequest(keywords=KEYWORDS, observe=True)]
                )
            # The check fires before any translation work is paid for.
            assert "requests" not in engine.service.metrics.snapshot().get(
                "counters", {}
            )

    def test_fingerprint_stable_across_config_round_trip(self):
        a = mini_engine()
        b = Engine.from_config(
            EngineConfig.from_dict(a.config.to_dict()),
            dataset=mini_dataset(), query_log=build_mini_log(),
        )
        with a, b:
            assert a.fingerprint() == b.fingerprint()

    def test_stats_carry_engine_provenance(self):
        with mini_engine() as engine:
            stats = engine.stats()
        assert stats["engine"]["backend"] == "Pipeline+"
        assert "config_fingerprint" in stats["engine"]


class TestEngineArtifacts:
    def test_artifact_source_serves_compiled_state(self, tmp_path,
                                                   mas_dataset):
        from repro.serving import ArtifactStore

        artifacts = ArtifactStore(tmp_path).compile(mas_dataset)
        config = EngineConfig(
            dataset="mas", log_source="artifacts", artifacts=str(tmp_path)
        )
        with Engine.from_config(config) as engine:
            assert engine.artifact_version == artifacts.version
            assert engine.templar.qfg.fingerprint() == \
                artifacts.qfg.fingerprint()
            response = engine.translate(
                "return the papers after 2000", limit=1
            )
            assert response.sql is not None
            assert response.to_payload()["provenance"]["artifact_version"] \
                == artifacts.version

    def test_query_log_override_conflicts_with_concrete_sources(
        self, tmp_path
    ):
        config = EngineConfig(
            dataset="mini", log_source="artifacts", artifacts=str(tmp_path)
        )
        with pytest.raises(ConfigError, match="artifacts"):
            Engine.from_config(
                config, dataset=mini_dataset(), query_log=build_mini_log()
            )
        config = EngineConfig(
            dataset="mini", log_source="file",
            log_path=str(tmp_path / "prod.sql"),
        )
        with pytest.raises(ConfigError, match="file"):
            Engine.from_config(
                config, dataset=mini_dataset(), query_log=build_mini_log()
            )

    def test_baseline_backend_rejects_explicit_log_state(self, tmp_path):
        """Requested log state must fail loudly, never be silently dropped."""
        config = EngineConfig(
            dataset="mini", backend="pipeline",
            log_source="artifacts", artifacts=str(tmp_path),
        )
        with pytest.raises(ConfigError, match="not log-augmented"):
            Engine.from_config(config, dataset=mini_dataset())
        config = EngineConfig(
            dataset="mini", backend="pipeline",
            log_source="file", log_path=str(tmp_path / "log.sql"),
        )
        with pytest.raises(ConfigError, match="not log-augmented"):
            Engine.from_config(config, dataset=mini_dataset())
        with pytest.raises(ConfigError, match="query_log"):
            Engine.from_config(
                EngineConfig(dataset="mini", backend="pipeline"),
                dataset=mini_dataset(), query_log=build_mini_log(),
            )

    def test_artifact_obscurity_mismatch_rejected(self, tmp_path,
                                                  mas_dataset):
        from repro.serving import ArtifactStore

        ArtifactStore(tmp_path).compile(mas_dataset)  # NoConstOp
        config = EngineConfig(
            dataset="mas", log_source="artifacts", artifacts=str(tmp_path),
            obscurity="Full",
        )
        with pytest.raises(ConfigError, match="obscurity"):
            Engine.from_config(config)

    def test_log_file_source(self, tmp_path):
        log_file = tmp_path / "log.sql"
        log_file.write_text(
            "\n".join(build_mini_log().queries) + "\n"
        )
        config = EngineConfig(
            dataset="mini", log_source="file", log_path=str(log_file)
        )
        with Engine.from_config(config, dataset=mini_dataset()) as engine:
            assert engine.templar.qfg.total_queries == len(build_mini_log())


class TestStrictWireCodec:
    def test_unknown_request_field_rejected(self):
        with pytest.raises(ServingError, match="unknown request field"):
            TranslationRequest.from_payload(
                {"nlq": "x", "observ": True}
            )

    def test_unknown_keyword_field_rejected(self):
        with pytest.raises(ServingError, match="unknown keyword field"):
            keyword_from_dict({"text": "papers", "contxt": "SELECT"})

    def test_both_nlq_and_keywords_rejected(self):
        with pytest.raises(ServingError):
            TranslationRequest.from_payload({
                "nlq": "x",
                "keywords": [{"text": "papers"}],
            })

    def test_neither_nlq_nor_keywords_rejected(self):
        with pytest.raises(ServingError, match="keywords"):
            TranslationRequest.from_payload({})

    def test_request_payload_round_trip(self):
        request = TranslationRequest(
            keywords=KEYWORDS, limit=2, observe=True
        )
        again = TranslationRequest.from_payload(request.to_payload())
        assert again == request


class TestHTTPFromEngine:
    def test_server_built_from_engine(self):
        engine = mini_engine()
        server = make_server(engine=engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            body = json.dumps(
                {"nlq": "return the papers after 2000", "limit": 1}
            ).encode("utf-8")
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/translate", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                payload = json.loads(response.read())
            assert payload["count"] >= 1
            assert payload["provenance"]["backend"] == "Pipeline+"
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/stats"
            ) as response:
                stats = json.loads(response.read())
            assert stats["engine"]["dataset"] == "mini"
        finally:
            server.shutdown()
            engine.close()

    def test_engine_and_service_are_mutually_exclusive(self):
        engine = mini_engine()
        try:
            with pytest.raises(ServingError, match="not both"):
                make_server(engine.service, engine=engine, port=0)
            with pytest.raises(ServingError, match="needs a service"):
                make_server(port=0)
        finally:
            engine.close()


class TestCLIEntryPoint:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_build_service_shim_warns(self, tmp_path):
        from repro.cli import _build_service

        args = argparse.Namespace(
            dataset="mas", artifacts=None, version=None, cache_size=64,
            workers=1, learn_batch=None,
        )
        with pytest.warns(DeprecationWarning, match="Engine.from_config"):
            service, parser = _build_service(args)
        assert service.nlidb.name == "Pipeline+"
        assert parser is not None
        service.close()

    def test_repro_error_exits_2_uniformly(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["serve", "--dataset", "mas",
                     "--artifacts", str(tmp_path / "void"), "--port", "0"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_translate_backend_flag(self, capsys):
        from repro.cli import main

        code = main(["translate", "--dataset", "mas", "--backend", "pipeline",
                     "--nlq", "return the papers after 2005"])
        assert code == 0
        assert "SQL: SELECT" in capsys.readouterr().out

    def test_invalid_worker_count_exits_2(self, capsys):
        from repro.cli import main

        code = main(["serve", "--dataset", "mas", "--workers", "0",
                     "--port", "0"])
        assert code == 2
        assert "max_workers" in capsys.readouterr().err

    def test_misconfigured_learn_batch_exits_2(self, capsys):
        """Construction-time ServingError is operational: exit 2, not 1."""
        from repro.cli import main

        code = main(["serve", "--dataset", "mas", "--learn-batch", "5000",
                     "--port", "0"])
        assert code == 2
        assert "learn_batch_size" in capsys.readouterr().err

    def test_baseline_backend_with_artifacts_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["serve", "--dataset", "mas", "--backend", "pipeline",
                     "--artifacts", str(tmp_path), "--port", "0"])
        assert code == 2
        assert "not log-augmented" in capsys.readouterr().err
