"""Tests for the schema catalog."""

import pytest

from repro.db import Catalog, Column, ColumnType, ForeignKey, TableSchema
from repro.errors import SchemaError

_INT = ColumnType.INTEGER
_TEXT = ColumnType.TEXT


def make_schema() -> TableSchema:
    return TableSchema(
        "publication",
        [
            Column("pid", _INT),
            Column("title", _TEXT, display=True, searchable=True),
            Column("year", _INT),
        ],
        primary_key="pid",
    )


class TestColumn:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name", _INT)

    def test_searchable_requires_text(self):
        with pytest.raises(SchemaError):
            Column("year", _INT, searchable=True)

    def test_display_allowed_on_any_type(self):
        assert Column("count", _INT, display=True).display


class TestTableSchema:
    def test_column_lookup(self):
        schema = make_schema()
        assert schema.column("title").type is _TEXT
        assert schema.column_index("year") == 2

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_schema().column("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", _INT), Column("a", _INT)])

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_unknown_pk_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", _INT)], primary_key="b")

    def test_multiple_display_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", _TEXT, display=True), Column("b", _TEXT, display=True)],
            )

    def test_display_column_property(self):
        assert make_schema().display_column == "title"

    def test_no_display_column(self):
        schema = TableSchema("t", [Column("a", _INT)])
        assert schema.display_column is None

    def test_string_pk_normalized_to_tuple(self):
        assert make_schema().primary_key == ("pid",)


class TestCatalog:
    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        assert catalog.has_table("publication")
        assert catalog.table("publication").name == "publication"

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        with pytest.raises(SchemaError):
            catalog.add_table(make_schema())

    def test_unknown_table_raises(self):
        with pytest.raises(SchemaError):
            Catalog().table("nope")

    def test_foreign_key_validation(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        with pytest.raises(SchemaError):
            catalog.add_foreign_key(
                ForeignKey("publication", "jid", "journal", "jid")
            )

    def test_foreign_key_unknown_column(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        catalog.add_table(TableSchema("journal", [Column("jid", _INT)]))
        with pytest.raises(SchemaError):
            catalog.add_foreign_key(
                ForeignKey("publication", "nope", "journal", "jid")
            )

    def test_attribute_enumeration(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        refs = [str(ref) for ref in catalog.all_attributes()]
        assert refs == ["publication.pid", "publication.title", "publication.year"]

    def test_numeric_and_text_attributes(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        numeric = {str(r) for r in catalog.numeric_attributes()}
        assert numeric == {"publication.pid", "publication.year"}
        text = {str(r) for r in catalog.text_attributes()}
        assert text == {"publication.title"}  # only searchable columns

    def test_stats(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        stats = catalog.stats()
        assert stats == {"relations": 1, "attributes": 3, "fk_pk": 0}

    def test_foreign_keys_of(self, mini_db):
        fks = mini_db.catalog.foreign_keys_of("writes")
        assert len(fks) == 2
        fks_journal = mini_db.catalog.foreign_keys_of("journal")
        assert len(fks_journal) == 1
