"""CLI tests for the serving subcommands and hardened error handling."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestWarmupCommand:
    def test_warmup_compiles_and_reports(self, tmp_path, capsys):
        assert main(["warmup", "--dataset", "mas",
                     "--artifacts", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mas" in out
        assert "qfg vertices" in out
        assert (tmp_path / "mas" / "LATEST").is_file()

    def test_warmup_explicit_version(self, tmp_path, capsys):
        assert main(["warmup", "--dataset", "mas", "--artifacts",
                     str(tmp_path), "--version", "v1"]) == 0
        assert (tmp_path / "mas" / "v1" / "manifest.json").is_file()
        assert "v1" in capsys.readouterr().out


class TestHardenedErrors:
    def test_unknown_dataset_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["warmup", "--dataset", "enron", "--artifacts", "/tmp/x"])
        assert "invalid choice" in capsys.readouterr().err

    def test_missing_artifacts_is_one_line_error(self, tmp_path, capsys):
        code = main(["serve", "--dataset", "mas",
                     "--artifacts", str(tmp_path / "empty"), "--port", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "repro warmup" in err
        assert "Traceback" not in err

    def test_version_without_artifacts_rejected(self, capsys):
        code = main(["serve", "--dataset", "mas", "--version", "abc123",
                     "--port", "0"])
        assert code == 2
        assert "--artifacts" in capsys.readouterr().err

    def test_stale_version_is_one_line_error(self, tmp_path, capsys):
        main(["warmup", "--dataset", "mas", "--artifacts", str(tmp_path)])
        capsys.readouterr()
        code = main(["serve", "--dataset", "mas", "--artifacts",
                     str(tmp_path), "--version", "gone", "--port", "0"])
        assert code == 2
        assert "not found" in capsys.readouterr().err


class TestTraceConfigGating:
    def test_trace_exits_2_when_tracing_disabled(self, tmp_path, capsys):
        config = tmp_path / "engine.json"
        config.write_text('{"dataset": "mas", "tracing": false}')
        code = main(["trace", "--config", str(config),
                     "--nlq", "return the papers after 2000"])
        assert code == 2
        err = capsys.readouterr().err
        assert "tracing is disabled" in err
        assert '"tracing": true' in err  # the fix is named, not implied

    def test_trace_runs_when_config_enables_tracing(self, tmp_path, capsys):
        config = tmp_path / "engine.json"
        config.write_text('{"dataset": "mas", "tracing": true}')
        code = main(["trace", "--config", str(config),
                     "--nlq", "return the papers after 2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SQL:" in out and "trace " in out


class TestLogsQueryCommand:
    @pytest.fixture()
    def journal(self, tmp_path):
        from repro.api import Engine, EngineConfig

        jdir = tmp_path / "journal"
        with Engine.from_config(
            EngineConfig(dataset="mas", journal_dir=str(jdir))
        ) as engine:
            engine.translate("return the papers after 2000")
            engine.translate("return all the authors")
        return jdir

    def test_query_prints_sql_and_rows(self, journal, capsys):
        code = main(["logs", "query", "--journal", str(journal),
                     "--nlq", "number of requests"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SELECT COUNT(t1.nlq) FROM requests t1" in out
        assert "2" in out

    def test_sql_only_prints_the_bare_statement(self, journal, capsys):
        code = main(["logs", "query", "--journal", str(journal),
                     "--nlq", "number of requests", "--sql-only"])
        assert code == 0
        out = capsys.readouterr().out.strip()
        assert out == "SELECT COUNT(t1.nlq) FROM requests t1"

    def test_unanswerable_question_is_exit_1(self, journal, capsys):
        code = main(["logs", "query", "--journal", str(journal),
                     "--nlq", "what is the airspeed of an unladen swallow"])
        assert code in (1, 2)
        assert capsys.readouterr().err.strip()

    def test_empty_journal_is_exit_2(self, tmp_path, capsys):
        code = main(["logs", "query", "--journal", str(tmp_path / "empty"),
                     "--nlq", "number of requests"])
        assert code == 2
        assert "no records" in capsys.readouterr().err
