"""CLI tests for the serving subcommands and hardened error handling."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestWarmupCommand:
    def test_warmup_compiles_and_reports(self, tmp_path, capsys):
        assert main(["warmup", "--dataset", "mas",
                     "--artifacts", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mas" in out
        assert "qfg vertices" in out
        assert (tmp_path / "mas" / "LATEST").is_file()

    def test_warmup_explicit_version(self, tmp_path, capsys):
        assert main(["warmup", "--dataset", "mas", "--artifacts",
                     str(tmp_path), "--version", "v1"]) == 0
        assert (tmp_path / "mas" / "v1" / "manifest.json").is_file()
        assert "v1" in capsys.readouterr().out


class TestHardenedErrors:
    def test_unknown_dataset_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["warmup", "--dataset", "enron", "--artifacts", "/tmp/x"])
        assert "invalid choice" in capsys.readouterr().err

    def test_missing_artifacts_is_one_line_error(self, tmp_path, capsys):
        code = main(["serve", "--dataset", "mas",
                     "--artifacts", str(tmp_path / "empty"), "--port", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "repro warmup" in err
        assert "Traceback" not in err

    def test_version_without_artifacts_rejected(self, capsys):
        code = main(["serve", "--dataset", "mas", "--version", "abc123",
                     "--port", "0"])
        assert code == 2
        assert "--artifacts" in capsys.readouterr().err

    def test_stale_version_is_one_line_error(self, tmp_path, capsys):
        main(["warmup", "--dataset", "mas", "--artifacts", str(tmp_path)])
        capsys.readouterr()
        code = main(["serve", "--dataset", "mas", "--artifacts",
                     str(tmp_path), "--version", "gone", "--port", "0"])
        assert code == 2
        assert "not found" in capsys.readouterr().err
