"""Tests for MAPKEYWORDS (Algorithms 1-3) and configuration ranking."""

import pytest

from repro.core import FragmentContext, Keyword, KeywordMetadata
from repro.core.fragments import FragmentKind
from repro.core.keyword_mapper import (
    KeywordMapper,
    ScoringParams,
    extract_number,
    strip_number,
)
from repro.errors import MappingError

SELECT = FragmentContext.SELECT
WHERE = FragmentContext.WHERE
FROM = FragmentContext.FROM


def kw(text, context, op=None, aggregates=(), **kwargs):
    return Keyword(
        text,
        KeywordMetadata(
            context=context, comparison_op=op, aggregates=aggregates, **kwargs
        ),
    )


@pytest.fixture()
def mapper(mini_db, mini_model):
    return KeywordMapper(mini_db, mini_model)


@pytest.fixture()
def log_mapper(mini_db, mini_model, mini_log):
    qfg = mini_log.build_qfg(mini_db.catalog)
    return KeywordMapper(mini_db, mini_model, qfg=qfg)


class TestNumberHelpers:
    def test_extract_integer(self):
        assert extract_number("after 2000") == 2000

    def test_extract_float(self):
        assert extract_number("above 4.5") == 4.5

    def test_no_number(self):
        assert extract_number("papers") is None

    def test_strip_number(self):
        assert strip_number("after 2000") == "after"


class TestCandidates:
    def test_numeric_branch_requires_operator(self, mapper):
        """A value phrase containing a digit stays on the full-text path."""
        candidates = mapper.keyword_candidates(kw("after 2005", WHERE, op=">"))
        assert all(c.kind is FragmentKind.PREDICATE for c in candidates)
        assert all(c.value == 2005 for c in candidates)
        # Only publication.year has values above 2005 in the mini db.
        assert {c.attribute for c in candidates} == {"year"}

    def test_numeric_exec_check_filters_empty(self, mapper):
        candidates = mapper.keyword_candidates(kw("after 2050", WHERE, op=">"))
        assert candidates == []

    def test_from_context_yields_relations(self, mapper):
        candidates = mapper.keyword_candidates(kw("papers", FROM))
        assert {c.relation for c in candidates} == {
            "publication", "journal", "author", "writes",
        }
        assert all(c.kind is FragmentKind.RELATION for c in candidates)

    def test_select_context_yields_all_attributes(self, mapper, mini_db):
        candidates = mapper.keyword_candidates(kw("papers", SELECT))
        assert len(candidates) == len(mini_db.attributes())

    def test_select_aggregates_carried(self, mapper):
        candidates = mapper.keyword_candidates(
            kw("papers", SELECT, aggregates=("COUNT",))
        )
        assert all(c.aggregates == ("COUNT",) for c in candidates)

    def test_value_keyword_full_text(self, mapper):
        candidates = mapper.keyword_candidates(kw("TKDE", WHERE))
        assert [
            (c.relation, c.attribute, c.value) for c in candidates
        ] == [("journal", "name", "TKDE")]

    def test_value_keyword_schema_token_stripped(self, mapper):
        """'TKDE journal' finds journal.name='TKDE' by dropping 'journal'."""
        candidates = mapper.keyword_candidates(kw("TKDE journal", WHERE))
        assert any(c.value == "TKDE" for c in candidates)

    def test_aggregate_numeric_yields_having(self, mapper):
        candidates = mapper.keyword_candidates(
            kw("more than 2 papers", WHERE, op=">", aggregates=("COUNT",))
        )
        assert all(c.context is FragmentContext.HAVING for c in candidates)
        assert len(candidates) == 4  # one per relation


class TestScoring:
    def test_exact_value_match_scores_one(self, mapper):
        candidates = mapper.keyword_candidates(kw("TKDE", WHERE))
        scored = mapper.score_and_prune(kw("TKDE", WHERE), candidates)
        assert scored[0].score == 1.0

    def test_exact_match_prunes_others(self, mapper, mini_db):
        mini_db.insert("journal", (3, "TKDE Letters"))
        keyword = kw("TKDE", WHERE)
        scored = mapper.score_and_prune(
            keyword, mapper.keyword_candidates(keyword)
        )
        # The partial match "TKDE Letters" is evicted by the exact match.
        assert [m.fragment.value for m in scored] == ["TKDE"]

    def test_display_attribute_reaches_relation_name(self, mapper):
        keyword = kw("papers", SELECT)
        scored = mapper.score_and_prune(
            keyword, mapper.keyword_candidates(keyword)
        )
        by_key = {m.fragment.key(): m.score for m in scored}
        # journal.name narrowly beats publication.title (the calibrated
        # confusion), both far above non-display attributes.
        assert by_key["SELECT::journal.name"] > by_key["SELECT::publication.title"]

    def test_top_kappa_pruning(self, mini_db, mini_model):
        params = ScoringParams(kappa=2)
        mapper = KeywordMapper(mini_db, mini_model, params=params)
        keyword = kw("papers", SELECT)
        scored = mapper.score_and_prune(
            keyword, mapper.keyword_candidates(keyword)
        )
        assert len(scored) <= 2 * 4  # kappa plus bounded ties

    def test_numeric_scores_operator_word(self, mapper):
        keyword = kw("after 2005", WHERE, op=">")
        scored = mapper.score_and_prune(
            keyword, mapper.keyword_candidates(keyword)
        )
        assert scored[0].fragment.attribute == "year"
        # lexicon (after, year) = 0.7, times the semantic coverage factor
        # 0.5 + 0.5 * 0.7.
        assert scored[0].score == pytest.approx(0.70 * 0.85)

    def test_invalid_params_rejected(self):
        with pytest.raises(MappingError):
            ScoringParams(kappa=0)
        with pytest.raises(MappingError):
            ScoringParams(lam=1.5)


class TestConfigurations:
    def paper_keywords(self):
        return [kw("papers", SELECT), kw("after 2000", WHERE, op=">")]

    def test_baseline_prefers_journal(self, mapper):
        """Without a log, word similarity alone picks the wrong mapping
        (the paper's Example 1)."""
        configs = mapper.map_keywords(self.paper_keywords())
        top = configs[0].mappings[0].fragment
        assert top.relation == "journal"

    def test_log_flips_to_publication(self, log_mapper):
        """With the QFG, log evidence overrides the similarity near-tie
        (the paper's Example 3)."""
        configs = log_mapper.map_keywords(self.paper_keywords())
        top = configs[0].mappings[0].fragment
        assert top.relation == "publication"
        assert top.attribute == "title"

    def test_scores_are_ordered(self, log_mapper):
        configs = log_mapper.map_keywords(self.paper_keywords())
        scores = [c.score for c in configs]
        assert scores == sorted(scores, reverse=True)

    def test_sigma_score_is_geometric_mean(self, mapper):
        configs = mapper.map_keywords(self.paper_keywords())
        top = configs[0]
        product = 1.0
        for mapping in top.mappings:
            product *= mapping.score
        assert top.sigma_score == pytest.approx(
            product ** (1 / len(top.mappings))
        )

    def test_lambda_one_ignores_log(self, mini_db, mini_model, mini_log):
        qfg = mini_log.build_qfg(mini_db.catalog)
        pure_sigma = KeywordMapper(
            mini_db, mini_model, qfg=qfg, params=ScoringParams(lam=1.0)
        )
        configs = pure_sigma.map_keywords(self.paper_keywords())
        assert configs[0].mappings[0].fragment.relation == "journal"

    def test_lambda_zero_is_pure_log(self, mini_db, mini_model, mini_log):
        qfg = mini_log.build_qfg(mini_db.catalog)
        pure_log = KeywordMapper(
            mini_db, mini_model, qfg=qfg, params=ScoringParams(lam=0.0)
        )
        configs = pure_log.map_keywords(self.paper_keywords())
        assert configs[0].mappings[0].fragment.relation == "publication"

    def test_unmappable_keyword_returns_empty(self, mapper):
        configs = mapper.map_keywords([kw("zzzqqq", WHERE)])
        assert configs == []

    def test_single_keyword_falls_back_to_sigma(self, log_mapper):
        configs = log_mapper.map_keywords([kw("TKDE", WHERE)])
        assert configs[0].qfg_score == configs[0].sigma_score

    def test_relation_bag_single_instance(self, log_mapper):
        configs = log_mapper.map_keywords(self.paper_keywords())
        assert configs[0].relation_bag() == ["publication"]

    def test_relation_bag_self_join(self, log_mapper):
        configs = log_mapper.map_keywords(
            [
                kw("papers", SELECT),
                kw("John Smith", WHERE),
                kw("Jane Doe", WHERE),
            ]
        )
        bag = configs[0].relation_bag()
        assert bag.count("author") == 2

    def test_aggregate_collapse_keeps_display(self, mapper):
        keyword = kw("papers", SELECT, aggregates=("COUNT",))
        scored = mapper.score_and_prune(
            keyword, mapper.keyword_candidates(keyword)
        )
        publication = [
            m for m in scored if m.fragment.relation == "publication"
        ]
        assert len(publication) == 1
        assert publication[0].fragment.attribute == "title"
