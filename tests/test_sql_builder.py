"""Direct unit tests for the SQL builder (configuration + path → AST)."""

import pytest

from repro.core import FragmentContext, JoinPathGenerator
from repro.core.fragments import FragmentKind, QueryFragment
from repro.core.interface import (
    Configuration,
    Keyword,
    KeywordMetadata,
    QueryFragmentMapping,
)
from repro.errors import TranslationError
from repro.nlidb.sql_builder import build_sql
from repro.sql.writer import write_query

SELECT = FragmentContext.SELECT
WHERE = FragmentContext.WHERE


def mapping(keyword_text, fragment, context=SELECT, score=1.0, **meta):
    keyword = Keyword(keyword_text, KeywordMetadata(context=context, **meta))
    return QueryFragmentMapping(keyword, fragment, score)


def config(*mappings):
    return Configuration(
        mappings=tuple(mappings), sigma_score=1.0, qfg_score=1.0, score=1.0
    )


def attribute(relation, attr, context=SELECT, aggregates=(), descending=False):
    return QueryFragment(
        context=context,
        kind=FragmentKind.ATTRIBUTE,
        relation=relation,
        attribute=attr,
        aggregates=aggregates,
        descending=descending,
    )


def predicate(relation, attr, op, value, context=WHERE, aggregates=()):
    return QueryFragment(
        context=context,
        kind=FragmentKind.PREDICATE,
        relation=relation,
        attribute=attr,
        operator=op,
        value=value,
        aggregates=aggregates,
    )


@pytest.fixture()
def joins(mini_db):
    return JoinPathGenerator(mini_db.catalog)


class TestBuildSql:
    def test_single_relation(self, mini_db, joins):
        c = config(
            mapping("papers", attribute("publication", "title")),
            mapping("after 2000", predicate("publication", "year", ">", 2000),
                    context=WHERE),
        )
        path = joins.best(c.relation_bag())
        query = build_sql(c, path, mini_db.catalog)
        assert write_query(query) == (
            "SELECT t1.title FROM publication t1 WHERE t1.year > 2000"
        )

    def test_join_conditions_emitted(self, mini_db, joins):
        c = config(
            mapping("papers", attribute("publication", "title")),
            mapping("TKDE", predicate("journal", "name", "=", "TKDE"),
                    context=WHERE),
        )
        path = joins.best(c.relation_bag())
        sql = write_query(build_sql(c, path, mini_db.catalog))
        assert "t2.name = 'TKDE'" in sql or "t1.name = 'TKDE'" in sql
        assert "jid" in sql  # the FK-PK join condition

    def test_aggregate_projection(self, mini_db, joins):
        c = config(
            mapping(
                "papers",
                attribute("publication", "title", aggregates=("COUNT",)),
                aggregates=("COUNT",),
            ),
        )
        path = joins.best(c.relation_bag())
        sql = write_query(build_sql(c, path, mini_db.catalog))
        assert sql.startswith("SELECT COUNT(t1.title)")

    def test_group_by_added_for_mixed_select(self, mini_db, joins):
        c = config(
            mapping("journals", attribute("journal", "name")),
            mapping(
                "papers",
                attribute("publication", "title", aggregates=("COUNT",)),
                aggregates=("COUNT",),
            ),
        )
        path = joins.best(c.relation_bag())
        sql = write_query(build_sql(c, path, mini_db.catalog))
        assert "GROUP BY" in sql

    def test_having_clause(self, mini_db, joins):
        c = config(
            mapping("authors", attribute("author", "name")),
            mapping(
                "more than 2 papers",
                predicate(
                    "publication", "pid", ">", 2,
                    context=FragmentContext.HAVING, aggregates=("COUNT",),
                ),
                context=WHERE,
                aggregates=("COUNT",),
                comparison_op=">",
            ),
        )
        path = joins.best(c.relation_bag())
        sql = write_query(build_sql(c, path, mini_db.catalog))
        assert "HAVING COUNT" in sql
        assert "GROUP BY" in sql

    def test_order_by_and_limit(self, mini_db, joins):
        c = config(
            mapping("papers", attribute("publication", "title")),
            mapping(
                "most recent",
                attribute(
                    "publication", "year",
                    context=FragmentContext.ORDER_BY, descending=True,
                ),
                context=FragmentContext.ORDER_BY,
                descending=True,
                limit=3,
            ),
        )
        path = joins.best(c.relation_bag())
        sql = write_query(build_sql(c, path, mini_db.catalog))
        assert sql.endswith("ORDER BY t1.year DESC LIMIT 3")

    def test_self_join_value_routing(self, mini_db, joins):
        c = config(
            mapping("papers", attribute("publication", "title")),
            mapping("John Smith", predicate("author", "name", "=", "John Smith"),
                    context=WHERE),
            mapping("Jane Doe", predicate("author", "name", "=", "Jane Doe"),
                    context=WHERE),
        )
        bag = c.relation_bag()
        assert bag.count("author") == 2
        path = joins.best(bag)
        sql = write_query(build_sql(c, path, mini_db.catalog))
        # Both values appear, on different author instances.
        assert "John Smith" in sql and "Jane Doe" in sql
        assert sql.count("author") == 2

    def test_default_projection_when_no_select(self, mini_db, joins):
        c = config(
            mapping("after 2000", predicate("publication", "year", ">", 2000),
                    context=WHERE),
        )
        path = joins.best(c.relation_bag())
        sql = write_query(build_sql(c, path, mini_db.catalog))
        assert sql.startswith("SELECT t1.title")  # display column fallback

    def test_missing_relation_in_path_raises(self, mini_db, joins):
        c = config(
            mapping("papers", attribute("publication", "title")),
            mapping("TKDE", predicate("journal", "name", "=", "TKDE"),
                    context=WHERE),
        )
        # A path over the wrong relation set cannot realize the config.
        bad_path = joins.best(["author"])
        with pytest.raises(TranslationError):
            build_sql(c, bad_path, mini_db.catalog)

    def test_distinct_metadata(self, mini_db, joins):
        c = config(
            mapping("papers", attribute("publication", "title"),
                    distinct=True),
        )
        path = joins.best(c.relation_bag())
        sql = write_query(build_sql(c, path, mini_db.catalog))
        assert sql.startswith("SELECT DISTINCT")
