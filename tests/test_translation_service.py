"""TranslationService: cache consistency, batching, and online learning."""

from __future__ import annotations

import pytest

from repro.core import Keyword, KeywordMetadata, QueryLog, Templar
from repro.core.fragments import FragmentContext
from repro.embedding import CompositeModel
from repro.errors import ServingError
from repro.nlidb import PipelineNLIDB
from repro.serving import TranslationService


def _mini_requests() -> list[list[Keyword]]:
    select = FragmentContext.SELECT
    where = FragmentContext.WHERE
    return [
        [
            Keyword("papers", KeywordMetadata(select)),
            Keyword("after 2000", KeywordMetadata(where, comparison_op=">")),
        ],
        [
            Keyword("papers", KeywordMetadata(select)),
            Keyword("TKDE", KeywordMetadata(where)),
        ],
        [
            Keyword("papers", KeywordMetadata(select)),
            Keyword("John Smith", KeywordMetadata(where)),
        ],
        [Keyword("journals", KeywordMetadata(select))],
    ]


@pytest.fixture()
def service(mini_db, mini_model, mini_log):
    templar = Templar(mini_db, mini_model, mini_log)
    nlidb = PipelineNLIDB(mini_db, mini_model, templar)
    with TranslationService(nlidb, max_workers=3) as svc:
        yield svc


class TestCachedConsistency:
    def test_cached_and_batched_match_direct_translate(
        self, mini_db, mini_model, mini_log
    ):
        """The serving path must be a pure accelerator, never a rescorer."""
        templar = Templar(mini_db, mini_model, mini_log)
        direct = PipelineNLIDB(mini_db, mini_model, templar)
        direct_out = [
            [(r.sql, r.config_score, r.join_score) for r in direct.translate(kw)]
            for kw in _mini_requests()
        ]

        served_templar = Templar(mini_db, mini_model, mini_log)
        served_nlidb = PipelineNLIDB(mini_db, mini_model, served_templar)
        with TranslationService(served_nlidb, max_workers=4) as service:
            single = [
                [(r.sql, r.config_score, r.join_score) for r in service.translate(kw)]
                for kw in _mini_requests()
            ]
            # Twice through the batch API: cold then fully cached.
            for _ in range(2):
                batched = [
                    [(r.sql, r.config_score, r.join_score) for r in results]
                    for results in service.translate_batch(_mini_requests())
                ]
                assert batched == direct_out
            assert single == direct_out

    def test_consistency_on_sampled_mas_workload(self, mas_dataset):
        """Same check against real benchmark items (sampled for speed)."""
        db = mas_dataset.database
        model = CompositeModel(mas_dataset.lexicon)
        log = QueryLog([item.gold_sql for item in mas_dataset.usable_items()])
        items = mas_dataset.usable_items()[::17][:6]
        assert len(items) >= 4

        direct = PipelineNLIDB(db, model, Templar(db, model, log))
        expected = [
            [(r.sql, r.config_score) for r in direct.translate(item.keywords)]
            for item in items
        ]

        nlidb = PipelineNLIDB(db, model, Templar(db, model, log))
        with TranslationService(nlidb, max_workers=4) as service:
            requests = [item.keywords for item in items]
            batched = service.translate_batch(requests)
            rebatched = service.translate_batch(requests)
            assert [
                [(r.sql, r.config_score) for r in results] for results in batched
            ] == expected
            assert [
                [(r.sql, r.config_score) for r in results] for results in rebatched
            ] == expected
            stats = service.stats()
            translate_stats = next(
                c for c in stats["caches"] if c["name"] == "translate"
            )
            assert translate_stats["hits"] >= len(items)


class TestCachingBehaviour:
    def test_repeat_request_is_a_cache_hit(self, service):
        keywords = _mini_requests()[0]
        first = service.translate(keywords)
        second = service.translate(keywords)
        assert second is first
        stats = service._translate_cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1

    def test_batch_deduplicates_identical_requests(self, service):
        keywords = _mini_requests()[0]
        results = service.translate_batch([keywords, keywords, keywords])
        assert len(results) == 3
        assert results[0] is results[1] is results[2]
        assert service.metrics.counter("batch_deduplicated") == 2

    def test_equal_but_distinct_keyword_objects_share_an_entry(self, service):
        first = service.translate(_mini_requests()[0])
        again = service.translate(
            [
                Keyword("papers", KeywordMetadata(FragmentContext.SELECT)),
                Keyword(
                    "after 2000",
                    KeywordMetadata(FragmentContext.WHERE, comparison_op=">"),
                ),
            ]
        )
        assert again is first

    def test_empty_batch(self, service):
        assert service.translate_batch([]) == []

    def test_stage_caches_serve_across_requests(self, service):
        # Two different NLQs over the same relations share join-path work.
        service.translate(_mini_requests()[0])
        service.translate(_mini_requests()[1])
        join_stats = next(
            c for c in service.stats()["caches"] if c["name"] == "join_paths"
        )
        assert join_stats["hits"] > 0

    def test_warm_fills_the_cache(self, service):
        assert service.warm(_mini_requests()) == len(_mini_requests())
        for keywords in _mini_requests():
            service.translate(keywords)
        assert service._translate_cache.stats().hits >= len(_mini_requests())


class TestOnlineLearning:
    def test_observe_and_absorb_bumps_revision_and_invalidates(self, service):
        keywords = _mini_requests()[0]
        before = service.translate(keywords)
        revision = service.templar.qfg.revision

        service.observe("SELECT p.title FROM publication p WHERE p.year > 2000")
        assert service.pending_observations == 1
        assert service.absorb_pending() == 1
        assert service.pending_observations == 0
        assert service.templar.qfg.revision == revision + 1

        after = service.translate(keywords)
        # New revision => new cache entry (recomputed, not the old object).
        assert after is not before
        assert [r.sql for r in after] == [r.sql for r in before]

    def test_unparseable_observation_is_counted_not_raised(self, service):
        service.observe("SELECT garbage FROM nowhere at all")
        assert service.absorb_pending() == 0
        assert service.metrics.counter("observe_errors") == 1

    def test_learn_batch_size_auto_absorbs(self, mini_db, mini_model, mini_log):
        import time

        templar = Templar(mini_db, mini_model, mini_log)
        nlidb = PipelineNLIDB(mini_db, mini_model, templar)
        with TranslationService(nlidb, learn_batch_size=2) as service:
            service.observe("SELECT j.name FROM journal j")
            assert service.pending_observations == 1
            service.observe("SELECT a.name FROM author a")
            # The drain is scheduled on the worker pool, off the hot path.
            deadline = time.monotonic() + 5.0
            while (
                service.metrics.counter("observed_absorbed") < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert service.metrics.counter("observed_absorbed") == 2
            assert service.pending_observations == 0

    def test_pending_queue_is_bounded(self, mini_db, mini_model, mini_log):
        templar = Templar(mini_db, mini_model, mini_log)
        nlidb = PipelineNLIDB(mini_db, mini_model, templar)
        with TranslationService(nlidb, max_pending=3) as service:
            for i in range(5):
                service.observe(f"SELECT j.name FROM journal j -- {i}")
            assert service.pending_observations == 3
            assert service.metrics.counter("observed_dropped") == 2

    def test_observe_without_templar_raises(self, mini_db, mini_model):
        nlidb = PipelineNLIDB(mini_db, mini_model, None)
        with TranslationService(nlidb) as service:
            with pytest.raises(ServingError):
                service.observe("SELECT j.name FROM journal j")

    def test_take_pending_moves_queue_without_absorbing(self, service):
        revision = service.templar.qfg.revision
        service.observe("SELECT j.name FROM journal j")
        service.observe("SELECT a.name FROM author a")
        taken = service.take_pending()
        assert taken == [
            "SELECT j.name FROM journal j", "SELECT a.name FROM author a"
        ]
        assert service.pending_observations == 0
        # Nothing reached the graph: the caller owns the statements now
        # (the gateway hands them to a replacement engine on hot-swap).
        assert service.templar.qfg.revision == revision
        assert service.absorb_pending() == 0

    def test_closed_service_refuses_observations(self, service):
        service.close()
        with pytest.raises(ServingError, match="closed"):
            service.observe("SELECT j.name FROM journal j")

    def test_close_is_idempotent(self, service):
        service.observe("SELECT j.name FROM journal j")
        service.close()
        service.close()
        assert service.pending_observations == 0


class TestServiceStats:
    def test_stats_shape(self, service):
        service.translate(_mini_requests()[0])
        stats = service.stats()
        assert stats["system"] == "Pipeline+"
        assert {c["name"] for c in stats["caches"]} == {
            "translate", "keyword_mapping", "join_paths"
        }
        assert stats["qfg"]["total_queries"] > 0
        assert stats["metrics"]["counters"]["requests"] == 1
        assert "translate" in stats["metrics"]["latencies"]

    def test_invalid_worker_count_rejected(self, mini_db, mini_model):
        nlidb = PipelineNLIDB(mini_db, mini_model, None)
        with pytest.raises(ServingError):
            TranslationService(nlidb, max_workers=0)

    def test_double_wrapping_one_nlidb_rejected(
        self, mini_db, mini_model, mini_log
    ):
        templar = Templar(mini_db, mini_model, mini_log)
        nlidb = PipelineNLIDB(mini_db, mini_model, templar)
        with TranslationService(nlidb):
            with pytest.raises(ServingError, match="already wrapped"):
                TranslationService(nlidb)

    def test_close_absorbs_acknowledged_observations(
        self, mini_db, mini_model, mini_log
    ):
        templar = Templar(mini_db, mini_model, mini_log)
        nlidb = PipelineNLIDB(mini_db, mini_model, templar)
        service = TranslationService(nlidb, learn_batch_size=100)
        before = templar.qfg.total_queries
        service.observe("SELECT j.name FROM journal j")
        service.close()
        assert templar.qfg.total_queries == before + 1
        assert service.pending_observations == 0

    def test_out_of_range_learn_batch_rejected(self, mini_db, mini_model):
        nlidb = PipelineNLIDB(mini_db, mini_model, None)
        for bad in (8, 0, -1):
            with pytest.raises(ServingError, match="max_pending"):
                TranslationService(nlidb, learn_batch_size=bad, max_pending=4)
