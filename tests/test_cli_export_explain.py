"""Tests for the CLI, the SQL export and the explanation module."""

import pytest

from repro.cli import build_parser, main
from repro.core.explain import explain_configuration
from repro.datasets.export import (
    export_database_sql,
    export_dataset_sql,
    render_create_table,
    render_inserts,
)


class TestExplain:
    def test_decomposition(self, mini_templar):
        from repro.core import FragmentContext, Keyword, KeywordMetadata

        configs = mini_templar.map_keywords(
            [
                Keyword("papers", KeywordMetadata(FragmentContext.SELECT)),
                Keyword(
                    "after 2000",
                    KeywordMetadata(FragmentContext.WHERE, comparison_op=">"),
                ),
            ]
        )
        explanation = explain_configuration(configs[0], mini_templar.qfg)
        assert len(explanation.mappings) == 2
        assert len(explanation.pairs) == 1
        assert explanation.pairs[0].dice > 0
        rendered = explanation.render()
        assert "Score_σ" in rendered and "Dice" in rendered

    def test_without_qfg(self, mini_db, mini_model):
        from repro.core import (
            FragmentContext,
            Keyword,
            KeywordMetadata,
            Templar,
        )

        templar = Templar(mini_db, mini_model, None)
        configs = templar.map_keywords(
            [Keyword("TKDE", KeywordMetadata(FragmentContext.WHERE))]
        )
        explanation = explain_configuration(configs[0], None)
        assert explanation.pairs == ()
        assert "falls back" in explanation.render()


class TestExport:
    def test_create_table_rendering(self, mini_db):
        ddl = render_create_table(
            mini_db.catalog.table("publication"), mini_db
        )
        assert "CREATE TABLE publication" in ddl
        assert "PRIMARY KEY (pid)" in ddl
        assert "FOREIGN KEY (jid) REFERENCES journal (jid)" in ddl

    def test_insert_rendering_and_escaping(self, mini_db):
        mini_db.insert("journal", (9, "O'Reilly"))
        inserts = render_inserts(mini_db.catalog.table("journal"), mini_db)
        assert any("O''Reilly" in stmt for stmt in inserts)

    def test_null_rendering(self, mini_db):
        mini_db.insert("journal", (10, None))
        inserts = render_inserts(mini_db.catalog.table("journal"), mini_db)
        assert any("NULL" in stmt for stmt in inserts)

    def test_dependency_order(self, mini_db):
        dump = export_database_sql(mini_db)
        # journal/author DDL must precede their FK sources.
        assert dump.index("CREATE TABLE journal") < dump.index(
            "CREATE TABLE publication"
        )
        assert dump.index("CREATE TABLE author") < dump.index(
            "CREATE TABLE writes"
        )

    def test_dataset_export_includes_workload(self, mini_db, tmp_path, mas_dataset):
        path = export_dataset_sql(mas_dataset, tmp_path / "mas.sql")
        text = path.read_text()
        assert "CREATE TABLE publication" in text
        assert "-- NLQ:" in text

    def test_batching(self, mas_dataset):
        schema = mas_dataset.database.catalog.table("publication")
        inserts = render_inserts(schema, mas_dataset.database, batch_size=50)
        assert len(inserts) == -(-len(mas_dataset.database.table("publication").rows) // 50)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["evaluate", "--dataset", "mas"])
        assert args.system == "Pipeline+"

    def test_stats_command(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "MAS" in out and "YELP" in out and "IMDB" in out

    def test_translate_command(self, capsys):
        code = main(
            [
                "translate",
                "--dataset", "mas",
                "--nlq", "return the papers after 2005",
                "--explain",
                "--execute",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SQL: SELECT" in out
        assert "Score_σ" in out
        assert "answer" in out

    def test_translate_unparseable(self, capsys):
        code = main(
            ["translate", "--dataset", "mas", "--nlq", "xyzzy gibberish"]
        )
        assert code == 1

    def test_trace_command_prints_a_telescoping_span_tree(self, capsys):
        code = main(
            ["trace", "--dataset", "mas",
             "--nlq", "return the papers after 2005"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SQL: SELECT" in out
        assert "request" in out and "translate" in out
        # The footer states the acceptance invariant: per-stage
        # self-times telescope to the reported total.
        footer = next(
            line for line in out.splitlines()
            if line.startswith("stage self-times sum to")
        )
        parts = footer.split()
        assert parts[4] == parts[7]  # summed ms == total ms, verbatim

    def test_trace_command_no_result(self, capsys):
        code = main(["trace", "--dataset", "mas", "--nlq", "xyzzy gibberish"])
        assert code == 1

    def test_export_command(self, tmp_path, capsys):
        out_file = tmp_path / "dump.sql"
        assert main(["export", "--dataset", "mas", "--output", str(out_file)]) == 0
        assert out_file.exists()

    def test_evaluate_command_smoke(self, capsys):
        assert main(["evaluate", "--dataset", "yelp", "--system", "Pipeline"]) == 0
        out = capsys.readouterr().out
        assert "Pipeline on YELP" in out
