"""Tests for INFERJOINS and the Templar facade."""

import pytest

from repro.core import (
    FragmentContext,
    JoinPathGenerator,
    Keyword,
    KeywordMetadata,
    QueryLog,
    Templar,
)
from repro.db.catalog import ColumnRefSpec
from repro.errors import GraphError, ReproError


class TestJoinPathGenerator:
    def test_single_relation(self, mini_db):
        generator = JoinPathGenerator(mini_db.catalog)
        paths = generator.infer(["publication"])
        assert paths[0].edges == []
        assert paths[0].score == 1.0

    def test_direct_join(self, mini_db):
        generator = JoinPathGenerator(mini_db.catalog)
        best = generator.best(["publication", "journal"])
        assert best.score == 1.0
        assert len(best.edges) == 1

    def test_two_hop_join(self, mini_db):
        generator = JoinPathGenerator(mini_db.catalog)
        best = generator.best(["author", "publication"])
        assert "writes" in best.instances
        assert best.score == 0.5

    def test_self_join_bag(self, mini_db):
        generator = JoinPathGenerator(mini_db.catalog)
        best = generator.best(["author", "author", "publication"])
        assert "author#2" in best.instances
        assert "writes#2" in best.instances
        assert len(best.edges) == 4

    def test_log_weights_change_cost(self, mini_db, mini_log):
        qfg = mini_log.build_qfg(mini_db.catalog)
        log_generator = JoinPathGenerator(mini_db.catalog, qfg=qfg)
        plain = JoinPathGenerator(mini_db.catalog)
        log_path = log_generator.best(["publication", "journal"])
        plain_path = plain.best(["publication", "journal"])
        assert log_path.cost < plain_path.cost  # frequent joins are cheap

    def test_log_weights_disabled(self, mini_db, mini_log):
        qfg = mini_log.build_qfg(mini_db.catalog)
        generator = JoinPathGenerator(
            mini_db.catalog, qfg=qfg, use_log_weights=False
        )
        path = generator.best(["publication", "journal"])
        assert path.cost == 1.0  # unit weights

    def test_empty_bag_rejected(self, mini_db):
        with pytest.raises(GraphError):
            JoinPathGenerator(mini_db.catalog).infer([])

    def test_unknown_relation_rejected(self, mini_db):
        with pytest.raises(GraphError):
            JoinPathGenerator(mini_db.catalog).infer(["nope"])

    def test_ranked_alternatives(self, mini_db):
        generator = JoinPathGenerator(mini_db.catalog, top_k=3)
        paths = generator.infer(["author", "journal"])
        costs = [p.cost for p in paths]
        assert costs == sorted(costs)

    def test_relation_of_mapping(self, mini_db):
        generator = JoinPathGenerator(mini_db.catalog)
        best = generator.best(["author", "author"])
        assert best.relation_of("author#2") == "author"


class TestTemplarFacade:
    def test_interface_calls(self, mini_templar):
        keywords = [
            Keyword("papers", KeywordMetadata(FragmentContext.SELECT)),
            Keyword(
                "after 2000",
                KeywordMetadata(FragmentContext.WHERE, comparison_op=">"),
            ),
        ]
        configs = mini_templar.map_keywords(keywords)
        assert configs
        paths = mini_templar.infer_joins(["publication", "journal"])
        assert paths

    def test_infer_joins_accepts_attributes(self, mini_templar):
        paths = mini_templar.infer_joins(
            [ColumnRefSpec("publication", "title"), "journal"]
        )
        assert paths[0].instances == ["journal", "publication"]

    def test_toggles_isolate_components(self, mini_db, mini_model, mini_log):
        keywords_only = Templar(
            mini_db, mini_model, mini_log, use_log_joins=False
        )
        assert keywords_only.keyword_mapper.qfg is not None
        path = keywords_only.join_generator.best(["publication", "journal"])
        assert path.cost == 1.0

        joins_only = Templar(
            mini_db, mini_model, mini_log, use_log_keywords=False
        )
        assert joins_only.keyword_mapper.qfg is None
        assert joins_only.join_generator.qfg is not None

    def test_observe_query_updates_qfg(self, mini_db, mini_model):
        templar = Templar(mini_db, mini_model, None)
        assert templar.qfg is None
        templar.observe_query("SELECT title FROM publication")
        assert templar.qfg.total_queries == 1
        templar.observe_query("SELECT name FROM journal")
        assert templar.qfg.total_queries == 2

    def test_observe_invalid_query_raises(self, mini_db, mini_model):
        templar = Templar(mini_db, mini_model, None)
        with pytest.raises(ReproError):
            templar.observe_query("NOT SQL AT ALL (")

    def test_repr(self, mini_templar):
        assert "Templar" in repr(mini_templar)
