"""The generated 100+-table WIDE dataset: structure, inference, latency.

Join inference over the paper schemas (≤17 relations) never stresses
the Steiner-tree search; these tests pin the properties the fuzzer's
wide workload depends on — determinism, full FK connectivity, connected
inferred join trees, end-to-end translation, and *bounded* latency (a
regression to exponential search would blow the generous wall-clock
budgets here long before it hit the fuzzer).
"""

import time
from collections import deque

import pytest

from repro.api import Engine, EngineConfig
from repro.core.join_inference import JoinPathGenerator
from repro.datasets import load_dataset
from repro.datasets.wide import build_wide_dataset
from repro.serving.wire import TranslationRequest


@pytest.fixture(scope="module")
def wide():
    return load_dataset("wide")


@pytest.fixture(scope="module")
def wide_engine(wide):
    with Engine.from_config(EngineConfig(dataset="wide")) as engine:
        yield engine


def test_wide_has_at_least_100_tables(wide):
    assert len(wide.database.catalog.tables) >= 100


def test_wide_is_deterministic():
    a = build_wide_dataset(44)
    b = build_wide_dataset(44)
    assert sorted(a.database.catalog.tables) == sorted(b.database.catalog.tables)
    assert [item.gold_sql for item in a.items] == [
        item.gold_sql for item in b.items
    ]


def test_wide_fk_graph_is_connected(wide):
    """Every table is reachable from every other via FK edges."""
    catalog = wide.database.catalog
    adjacency: dict[str, set[str]] = {name: set() for name in catalog.tables}
    for fk in catalog.foreign_keys:
        adjacency[fk.source].add(fk.target)
        adjacency[fk.target].add(fk.source)
    start = next(iter(adjacency))
    seen = {start}
    queue = deque([start])
    while queue:
        for neighbor in adjacency[queue.popleft()]:
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    assert seen == set(adjacency), (
        f"unreachable tables: {sorted(set(adjacency) - seen)[:5]}"
    )


def test_wide_join_inference_returns_connected_tree(wide):
    """A two-relation bag yields a tree spanning both, over 120 tables."""
    catalog = wide.database.catalog
    fk = catalog.foreign_keys[0]
    generator = JoinPathGenerator(catalog)
    paths = generator.infer([fk.source, fk.target])
    assert paths
    top = paths[0]
    instances = set(top.instances)
    relations = {top.relation_of(instance) for instance in instances}
    assert {fk.source, fk.target} <= relations
    # A tree over n vertices has exactly n - 1 edges: connected, acyclic.
    assert len(top.edges) == len(instances) - 1


def test_wide_translates_end_to_end(wide, wide_engine):
    """Every workload family produces SQL naming the right relation."""
    by_family = {}
    for item in wide.usable_items():
        by_family.setdefault(item.family, item)
    assert set(by_family) == {"select", "filter", "value", "join"}
    for item in by_family.values():
        response = wide_engine.translate(
            TranslationRequest(keywords=tuple(item.keywords), limit=3)
        )
        assert response.results, item.item_id
        assert "SELECT" in response.sql


def test_wide_latency_is_bounded(wide, wide_engine):
    """No exponential blowup: a workload sweep stays inside a generous
    wall-clock budget (the fuzz throughput relies on this)."""
    items = wide.usable_items()[:20]
    started = time.perf_counter()
    for item in items:
        wide_engine.translate(
            TranslationRequest(keywords=tuple(item.keywords), limit=3)
        )
    elapsed = time.perf_counter() - started
    # Measured ~0.02 s/item average on a dev container (filter items are
    # the ~0.2 s worst case); 2 s/item average would indicate a
    # complexity regression, not a slow machine.
    assert elapsed < 40.0, f"20 wide translations took {elapsed:.1f}s"


def test_wide_join_inference_latency_is_bounded(wide):
    """Steiner search over the 120-table graph stays sub-second per bag."""
    catalog = wide.database.catalog
    generator = JoinPathGenerator(catalog)
    bags = [
        [fk.source, fk.target] for fk in catalog.foreign_keys[:10]
    ]
    started = time.perf_counter()
    for bag in bags:
        generator.infer(bag)
    elapsed = time.perf_counter() - started
    assert elapsed < 20.0, f"10 join inferences took {elapsed:.1f}s"
