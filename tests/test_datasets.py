"""Validation of the three benchmark datasets (Table II fidelity,
well-formed annotations, determinism)."""

import pytest

from repro.core import Obscurity, fragments_of_sql
from repro.core.fragments import FragmentContext
from repro.datasets import load_dataset
from repro.errors import DatasetError
from repro.sql import bind_query, parse_query

EXPECTED = {
    "mas": {"relations": 17, "attributes": 53, "fk_pk": 19, "queries": 194,
            "excluded": 2},
    "yelp": {"relations": 7, "attributes": 38, "fk_pk": 7, "queries": 127,
             "excluded": 1},
    "imdb": {"relations": 16, "attributes": 65, "fk_pk": 20, "queries": 128,
             "excluded": 3},
}


@pytest.fixture(params=["mas", "yelp", "imdb"])
def dataset(request, mas_dataset, yelp_dataset, imdb_dataset):
    return {"mas": mas_dataset, "yelp": yelp_dataset, "imdb": imdb_dataset}[
        request.param
    ]


class TestTable2Fidelity:
    def test_statistics_match_paper(self, dataset):
        expected = EXPECTED[dataset.name]
        stats = dataset.stats()
        assert stats["relations"] == expected["relations"]
        assert stats["attributes"] == expected["attributes"]
        assert stats["fk_pk"] == expected["fk_pk"]
        assert stats["queries"] == expected["queries"]

    def test_excluded_item_counts(self, dataset):
        excluded = [item for item in dataset.items if item.excluded]
        assert len(excluded) == EXPECTED[dataset.name]["excluded"]
        assert all(item.exclusion_reason for item in excluded)


class TestAnnotations:
    def test_every_gold_sql_parses_and_binds(self, dataset):
        for item in dataset.usable_items():
            bound = bind_query(
                parse_query(item.gold_sql), dataset.database.catalog
            )
            assert bound.instances, item.item_id

    def test_item_ids_unique(self, dataset):
        ids = [item.item_id for item in dataset.items]
        assert len(ids) == len(set(ids))

    def test_nlqs_unique(self, dataset):
        nlqs = [item.nlq for item in dataset.usable_items()]
        assert len(nlqs) == len(set(nlqs))

    def test_every_usable_item_has_keywords(self, dataset):
        for item in dataset.usable_items():
            assert item.keywords, item.item_id

    def test_value_keywords_reference_existing_values(self, dataset):
        """Gold predicates must hold values present in the database, or
        the full-text retrieval could never find them."""
        db = dataset.database
        for item in dataset.usable_items():
            fragments = fragments_of_sql(item.gold_sql, db.catalog)
            for fragment in fragments:
                if (
                    fragment.context is FragmentContext.WHERE
                    and fragment.operator == "="
                    and isinstance(fragment.value, str)
                    and not fragment.value_is_raw
                ):
                    values = db.distinct_values(
                        fragment.relation, fragment.attribute
                    )
                    assert fragment.value in values, (
                        f"{item.item_id}: {fragment} not in data"
                    )

    def test_gold_answers_nonempty_for_equality_families(self, dataset):
        """Most benchmark queries should return rows on the synthetic data
        (annotators pick values that exist)."""
        db = dataset.database
        nonempty = 0
        total = 0
        for item in dataset.usable_items()[:40]:
            result = db.execute(item.gold_sql)
            total += 1
            nonempty += bool(result.rows)
        assert nonempty / total > 0.8


class TestDeterminism:
    def test_same_seed_same_items(self, dataset):
        rebuilt = load_dataset(dataset.name, seed={"mas": 11, "yelp": 22,
                                                   "imdb": 33}[dataset.name])
        assert [i.gold_sql for i in rebuilt.items] == [
            i.gold_sql for i in dataset.items
        ]

    def test_registry_memoizes(self, dataset):
        again = load_dataset(dataset.name)
        assert again is dataset


class TestRegistry:
    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")


class TestLexicons:
    def test_mas_confusion_is_a_near_tie(self, mas_dataset):
        lexicon = mas_dataset.lexicon
        journal = lexicon.lookup("paper", "journal")
        publication = lexicon.lookup("paper", "publication")
        assert journal > publication  # the baseline errs...
        assert journal - publication < 0.02  # ...by a hair

    def test_imdb_confusion_is_a_near_tie(self, imdb_dataset):
        lexicon = imdb_dataset.lexicon
        series = lexicon.lookup("film", "series")
        movie = lexicon.lookup("film", "movie")
        assert series > movie
        assert series - movie < 0.02

    def test_nalir_lexicon_fixes_synonymy(self, mas_dataset):
        """WordNet-style: paper/publication share a synset for NaLIR."""
        merged = mas_dataset.nalir_model_lexicon()
        assert merged.lookup("paper", "publication") > merged.lookup(
            "paper", "journal"
        )


class TestGoldFragmentCoverage:
    def test_gold_fragments_extractable(self, dataset):
        """Every usable gold query yields at least a SELECT and a FROM
        fragment — the minimum the KW metric needs."""
        for item in dataset.usable_items():
            fragments = fragments_of_sql(
                item.gold_sql, dataset.database.catalog
            )
            contexts = {f.context for f in fragments}
            assert FragmentContext.FROM in contexts, item.item_id

    def test_obscured_keys_stable(self, dataset):
        item = dataset.usable_items()[0]
        first = {
            f.key(Obscurity.NO_CONST_OP)
            for f in fragments_of_sql(item.gold_sql, dataset.database.catalog)
        }
        second = {
            f.key(Obscurity.NO_CONST_OP)
            for f in fragments_of_sql(item.gold_sql, dataset.database.catalog)
        }
        assert first == second
