"""The BENCH_<name>.json perf-trajectory emitter (benchmarks/snapshot.py)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from snapshot import (  # noqa: E402
    HISTORY_KEEP,
    SCHEMA_VERSION,
    emit_snapshot,
    machine_fingerprint,
    read_snapshot,
    snapshot_path,
)


def test_emit_and_read_round_trip(tmp_path):
    path = emit_snapshot(
        "demo",
        {"speedup": 3.5, "warm_us": 12.0},
        config={"smoke": True},
        out_dir=tmp_path,
    )
    assert path == tmp_path / "BENCH_demo.json"
    payload = read_snapshot(path)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["name"] == "demo"
    assert payload["headline"] == {"speedup": 3.5, "warm_us": 12.0}
    assert payload["config"] == {"smoke": True}
    assert payload["machine"]["cpus"] >= 1
    assert payload["history"] == []


def test_rerun_accumulates_history(tmp_path):
    for run in range(3):
        path = emit_snapshot("demo", {"x": float(run)}, out_dir=tmp_path)
    payload = read_snapshot(path)
    assert payload["headline"] == {"x": 2.0}
    assert [entry["headline"] for entry in payload["history"]] == [
        {"x": 0.0}, {"x": 1.0},
    ]
    stamps = [entry["created_unix"] for entry in payload["history"]]
    assert stamps == sorted(stamps)  # oldest first


def test_history_entries_carry_their_config(tmp_path):
    """Trajectory readers must be able to tell smoke runs from full runs."""
    emit_snapshot("demo", {"x": 1.0}, config={"smoke": True}, out_dir=tmp_path)
    path = emit_snapshot(
        "demo", {"x": 2.0}, config={"smoke": False}, out_dir=tmp_path
    )
    history = read_snapshot(path)["history"]
    assert [entry["config"] for entry in history] == [{"smoke": True}]


def test_history_is_capped(tmp_path):
    for run in range(HISTORY_KEEP + 5):
        path = emit_snapshot("demo", {"x": float(run)}, out_dir=tmp_path)
    history = read_snapshot(path)["history"]
    assert len(history) == HISTORY_KEEP
    # The oldest runs fell off the front; the newest prior run survives.
    assert history[-1]["headline"] == {"x": float(HISTORY_KEEP + 3)}


def test_corrupt_prior_snapshot_starts_history_fresh(tmp_path):
    (tmp_path / "BENCH_demo.json").write_text("{not json")
    path = emit_snapshot("demo", {"x": 1.0}, out_dir=tmp_path)
    assert read_snapshot(path)["history"] == []


def test_reads_version_1_with_empty_history(tmp_path):
    path = emit_snapshot("demo", {"x": 1.0}, out_dir=tmp_path)
    payload = json.loads(path.read_text())
    payload["schema_version"] = 1
    del payload["history"]
    path.write_text(json.dumps(payload))
    loaded = read_snapshot(path)
    assert loaded["schema_version"] == 1
    assert loaded["history"] == []
    # Re-emitting over a v1 snapshot carries its headline forward.
    emit_snapshot("demo", {"x": 2.0}, out_dir=tmp_path)
    assert [entry["headline"] for entry in read_snapshot(path)["history"]] == [
        {"x": 1.0},
    ]


def test_fingerprint_names_the_interpreter():
    fingerprint = machine_fingerprint()
    assert set(fingerprint) == {"platform", "python", "machine", "cpus"}
    assert fingerprint["python"].count(".") >= 1


def test_default_path_is_the_repo_root():
    path = snapshot_path("perf_core")
    assert path.name == "BENCH_perf_core.json"
    assert (path.parent / "benchmarks").is_dir()


def test_read_rejects_missing_fields(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"name": "bad"}))
    with pytest.raises(ValueError, match="missing field"):
        read_snapshot(bad)


def test_read_rejects_wrong_schema_version(tmp_path):
    path = emit_snapshot("versioned", {"x": 1}, out_dir=tmp_path)
    payload = json.loads(path.read_text())
    payload["schema_version"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="schema_version"):
        read_snapshot(path)
