"""The BENCH_<name>.json perf-trajectory emitter (benchmarks/snapshot.py)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from snapshot import (  # noqa: E402
    SCHEMA_VERSION,
    emit_snapshot,
    machine_fingerprint,
    read_snapshot,
    snapshot_path,
)


def test_emit_and_read_round_trip(tmp_path):
    path = emit_snapshot(
        "demo",
        {"speedup": 3.5, "warm_us": 12.0},
        config={"smoke": True},
        out_dir=tmp_path,
    )
    assert path == tmp_path / "BENCH_demo.json"
    payload = read_snapshot(path)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["name"] == "demo"
    assert payload["headline"] == {"speedup": 3.5, "warm_us": 12.0}
    assert payload["config"] == {"smoke": True}
    assert payload["machine"]["cpus"] >= 1


def test_fingerprint_names_the_interpreter():
    fingerprint = machine_fingerprint()
    assert set(fingerprint) == {"platform", "python", "machine", "cpus"}
    assert fingerprint["python"].count(".") >= 1


def test_default_path_is_the_repo_root():
    path = snapshot_path("perf_core")
    assert path.name == "BENCH_perf_core.json"
    assert (path.parent / "benchmarks").is_dir()


def test_read_rejects_missing_fields(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"name": "bad"}))
    with pytest.raises(ValueError, match="missing field"):
        read_snapshot(bad)


def test_read_rejects_wrong_schema_version(tmp_path):
    path = emit_snapshot("versioned", {"x": 1}, out_dir=tmp_path)
    payload = json.loads(path.read_text())
    payload["schema_version"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="schema_version"):
        read_snapshot(path)
