"""The BENCH_<name>.json perf-trajectory emitter (benchmarks/snapshot.py)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from perf_report import render_trajectory  # noqa: E402
from snapshot import (  # noqa: E402
    HISTORY_KEEP,
    SCHEMA_VERSION,
    emit_snapshot,
    machine_fingerprint,
    read_snapshot,
    snapshot_path,
)


def test_emit_and_read_round_trip(tmp_path):
    path = emit_snapshot(
        "demo",
        {"speedup": 3.5, "warm_us": 12.0},
        config={"smoke": True},
        out_dir=tmp_path,
    )
    assert path == tmp_path / "BENCH_demo.json"
    payload = read_snapshot(path)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["name"] == "demo"
    assert payload["headline"] == {"speedup": 3.5, "warm_us": 12.0}
    assert payload["config"] == {"smoke": True}
    assert payload["machine"]["cpus"] >= 1
    assert payload["history"] == []


def test_rerun_accumulates_history(tmp_path):
    for run in range(3):
        path = emit_snapshot("demo", {"x": float(run)}, out_dir=tmp_path)
    payload = read_snapshot(path)
    assert payload["headline"] == {"x": 2.0}
    assert [entry["headline"] for entry in payload["history"]] == [
        {"x": 0.0}, {"x": 1.0},
    ]
    stamps = [entry["created_unix"] for entry in payload["history"]]
    assert stamps == sorted(stamps)  # oldest first


def test_history_entries_carry_their_config(tmp_path):
    """Trajectory readers must be able to tell smoke runs from full runs."""
    emit_snapshot("demo", {"x": 1.0}, config={"smoke": True}, out_dir=tmp_path)
    path = emit_snapshot(
        "demo", {"x": 2.0}, config={"smoke": False}, out_dir=tmp_path
    )
    history = read_snapshot(path)["history"]
    assert [entry["config"] for entry in history] == [{"smoke": True}]


def test_history_is_capped(tmp_path):
    for run in range(HISTORY_KEEP + 5):
        path = emit_snapshot("demo", {"x": float(run)}, out_dir=tmp_path)
    history = read_snapshot(path)["history"]
    assert len(history) == HISTORY_KEEP
    # The oldest runs fell off the front; the newest prior run survives.
    assert history[-1]["headline"] == {"x": float(HISTORY_KEEP + 3)}


def test_corrupt_prior_snapshot_starts_history_fresh(tmp_path):
    (tmp_path / "BENCH_demo.json").write_text("{not json")
    path = emit_snapshot("demo", {"x": 1.0}, out_dir=tmp_path)
    assert read_snapshot(path)["history"] == []


def test_reads_version_1_with_empty_history(tmp_path):
    path = emit_snapshot("demo", {"x": 1.0}, out_dir=tmp_path)
    payload = json.loads(path.read_text())
    payload["schema_version"] = 1
    del payload["history"]
    path.write_text(json.dumps(payload))
    loaded = read_snapshot(path)
    assert loaded["schema_version"] == 1
    assert loaded["history"] == []
    # Re-emitting over a v1 snapshot carries its headline forward.
    emit_snapshot("demo", {"x": 2.0}, out_dir=tmp_path)
    assert [entry["headline"] for entry in read_snapshot(path)["history"]] == [
        {"x": 1.0},
    ]


def test_fingerprint_names_the_interpreter():
    fingerprint = machine_fingerprint()
    assert set(fingerprint) == {"platform", "python", "machine", "cpus"}
    assert fingerprint["python"].count(".") >= 1


def test_default_path_is_the_repo_root():
    path = snapshot_path("perf_core")
    assert path.name == "BENCH_perf_core.json"
    assert (path.parent / "benchmarks").is_dir()


def test_read_rejects_missing_fields(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"name": "bad"}))
    with pytest.raises(ValueError, match="missing field"):
        read_snapshot(bad)


def test_read_rejects_wrong_schema_version(tmp_path):
    path = emit_snapshot("versioned", {"x": 1}, out_dir=tmp_path)
    payload = json.loads(path.read_text())
    payload["schema_version"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="schema_version"):
        read_snapshot(path)


# ------------------------------------------------- trajectory rendering


def test_trajectory_renders_empty_history_single_run(tmp_path):
    """A fresh snapshot (no prior runs) renders its one row plus a note
    instead of assuming history has entries."""
    emit_snapshot("demo", {"cases": 2000, "rate": 18.5}, out_dir=tmp_path)
    table = render_trajectory("demo", out_dir=tmp_path)
    rows = [line for line in table.splitlines() if line.startswith("|")]
    assert len(rows) == 3  # header, separator, the single run
    assert "2000.00" in rows[2]
    assert "first recorded run" in table


def test_trajectory_derives_columns_from_headline(tmp_path):
    """Non-perf_core snapshots chart whatever headline keys they carry."""
    emit_snapshot("demo", {"cases_per_second": 18.0}, out_dir=tmp_path)
    table = render_trajectory("demo", out_dir=tmp_path)
    assert "cases per second" in table


def test_trajectory_tolerates_missing_and_non_numeric_values(tmp_path):
    emit_snapshot("demo", {"x": 1.0, "label": "full"}, out_dir=tmp_path)
    emit_snapshot("demo", {"y": 2.0}, out_dir=tmp_path)
    table = render_trajectory("demo", out_dir=tmp_path)
    assert "—" in table  # each run lacks the other's key
    assert "full" in table  # strings render verbatim, no format crash


def test_trajectory_flags_smoke_runs(tmp_path):
    emit_snapshot("demo", {"x": 1.0}, config={"smoke": True}, out_dir=tmp_path)
    emit_snapshot("demo", {"x": 2.0}, config={"smoke": False}, out_dir=tmp_path)
    table = render_trajectory("demo", out_dir=tmp_path)
    assert table.count("(smoke)") == 1


def test_trajectory_reports_missing_snapshot(tmp_path):
    assert "no snapshot" in render_trajectory("absent", out_dir=tmp_path)
