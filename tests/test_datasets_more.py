"""Additional dataset-level invariants discovered to matter during
calibration — they pin the traps each workload is built around."""

import pytest

from repro.core import QueryLog
from repro.schema_graph import JoinGraph, steiner_tree


class TestMasSchemaTraps:
    def test_no_direct_publication_domain_shortcut(self, mas_dataset):
        """Figure 1's premise: publication reaches domain only through a
        venue or the keyword chain (3-4 edges), never in 2."""
        graph = JoinGraph.from_catalog(mas_dataset.database.catalog)
        tree = steiner_tree(graph, ["publication", "domain"])
        assert tree.edge_count >= 3

    def test_keyword_path_exists(self, mas_dataset):
        graph = JoinGraph.from_catalog(mas_dataset.database.catalog)
        for relation in ("publication_keyword", "keyword", "domain_keyword"):
            assert graph.has_instance(relation)

    def test_cite_is_publication_self_referencing(self, mas_dataset):
        fks = mas_dataset.database.catalog.foreign_keys_of("cite")
        targets = {fk.target for fk in fks if fk.source == "cite"}
        assert targets == {"publication"}

    def test_coauthor_pairs_exist_for_self_join_family(self, mas_dataset):
        items = [
            item for item in mas_dataset.usable_items()
            if item.family == "papers_by_two_authors"
        ]
        assert items
        for item in items:
            # Both author values must co-occur on at least one paper.
            result = mas_dataset.database.execute(item.gold_sql)
            assert result.rows, item.item_id


class TestImdbSchemaTraps:
    def test_msid_reaches_movie_and_series(self, imdb_dataset):
        """The dual-FK msid junctions create the movie/series ambiguity."""
        catalog = imdb_dataset.database.catalog
        for junction in ("cast", "classification", "directed_by", "tags"):
            targets = {
                fk.target
                for fk in catalog.foreign_keys_of(junction)
                if fk.source == junction and fk.source_column == "msid"
            }
            assert targets == {"movie", "tv_series"}, junction

    def test_actor_keyword_paths_tie_under_unit_weights(self, imdb_dataset):
        """actors_in_series_tagged's premise: movie and series routes tie."""
        from repro.schema_graph import top_k_steiner_trees

        graph = JoinGraph.from_catalog(imdb_dataset.database.catalog)
        trees = top_k_steiner_trees(graph, ["actor", "keyword"], 2)
        assert len(trees) == 2
        assert trees[0].cost == trees[1].cost
        routes = {"movie" in t.vertices for t in trees}
        assert routes == {True, False}  # one via movie, one via tv_series


class TestYelpSchemaTraps:
    def test_user_business_routes_tie(self, yelp_dataset):
        """users_of_business's premise: review and tip routes tie."""
        from repro.schema_graph import top_k_steiner_trees

        graph = JoinGraph.from_catalog(yelp_dataset.database.catalog)
        trees = top_k_steiner_trees(graph, ["user", "business"], 2)
        assert len(trees) == 2
        assert trees[0].cost == trees[1].cost

    def test_log_breaks_the_tie_toward_review(self, yelp_dataset):
        from repro.core.join_inference import JoinPathGenerator

        log = QueryLog([i.gold_sql for i in yelp_dataset.usable_items()])
        qfg = log.build_qfg(yelp_dataset.database.catalog)
        generator = JoinPathGenerator(yelp_dataset.database.catalog, qfg=qfg)
        paths = generator.infer(["user", "business"])
        assert "review" in paths[0].instances
        assert len(paths) < 2 or paths[0].cost < paths[1].cost - 1e-9


class TestWorkloadBalance:
    """The behaviour-class mix is what calibrates Table III; pin it."""

    def test_mas_family_count(self, mas_dataset):
        families = {item.family for item in mas_dataset.usable_items()}
        assert len(families) == 26

    def test_yelp_family_count(self, yelp_dataset):
        families = {item.family for item in yelp_dataset.usable_items()}
        assert len(families) == 19

    def test_imdb_family_count(self, imdb_dataset):
        families = {item.family for item in imdb_dataset.usable_items()}
        assert len(families) == 24

    @pytest.mark.parametrize("name", ["mas", "yelp", "imdb"])
    def test_no_family_dominates(
        self, name, mas_dataset, yelp_dataset, imdb_dataset
    ):
        dataset = {
            "mas": mas_dataset, "yelp": yelp_dataset, "imdb": imdb_dataset
        }[name]
        from collections import Counter

        counts = Counter(item.family for item in dataset.usable_items())
        assert max(counts.values()) <= 16
