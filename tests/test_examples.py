"""Smoke tests: the example scripts must run and tell the paper's story."""

import io
import contextlib
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        spec.loader.exec_module(module)
        module.main()
    return stdout.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart")
        assert "MAPKEYWORDS" in output
        assert "SELECT t1.title FROM publication t1 WHERE t1.year > 2000" in output
        assert "Answer rows" in output

    def test_academic_search_tells_example1_story(self):
        output = run_example("academic_search")
        # The baseline errs toward journal; Templar corrects to publication
        # via the keyword join path.
        assert "Baseline Pipeline" in output
        assert "publication_keyword" in output
        assert "Self-join NLQ" in output

    @pytest.mark.slow
    def test_yelp_reviews(self):
        output = run_example("yelp_reviews")
        assert "AVG(" in output
        assert "Incremental QFG" in output

    @pytest.mark.slow
    def test_movie_explorer(self):
        output = run_example("movie_explorer")
        assert "parser note" in output
        assert "Session-aware QFG" in output
