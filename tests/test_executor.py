"""Tests for the SELECT executor."""

import pytest

from repro.errors import BindError, ExecutionError
from repro.sql.parser import parse_query


class TestProjectionAndFilter:
    def test_simple_filter(self, mini_db):
        result = mini_db.execute(
            "SELECT title FROM publication WHERE year > 2004"
        )
        assert result.column() == [
            "Streaming Joins Revisited", "Adaptive Indexing",
        ]

    def test_multiple_columns(self, mini_db):
        result = mini_db.execute("SELECT jid, name FROM journal")
        assert result.rows == [(1, "TKDE"), (2, "TMC")]
        assert result.columns == ["jid", "name"]

    def test_like_filter(self, mini_db):
        result = mini_db.execute(
            "SELECT title FROM publication WHERE title LIKE '%Joins%'"
        )
        assert result.column() == ["Streaming Joins Revisited"]

    def test_in_filter(self, mini_db):
        result = mini_db.execute(
            "SELECT name FROM journal WHERE jid IN (1, 2)"
        )
        assert result.column() == ["TKDE", "TMC"]

    def test_between_filter(self, mini_db):
        result = mini_db.execute(
            "SELECT title FROM publication WHERE year BETWEEN 2000 AND 2006"
        )
        assert len(result) == 2

    def test_or_predicate(self, mini_db):
        result = mini_db.execute(
            "SELECT title FROM publication WHERE year < 2000 OR year > 2009"
        )
        assert len(result) == 2

    def test_not_predicate(self, mini_db):
        result = mini_db.execute(
            "SELECT title FROM publication WHERE NOT (year > 2000)"
        )
        assert result.column() == ["Mobile Network Survey"]

    def test_is_null(self, mini_db):
        mini_db.insert("publication", (9, "Untitled", None, None))
        result = mini_db.execute(
            "SELECT title FROM publication WHERE year IS NULL"
        )
        assert result.column() == ["Untitled"]


class TestJoins:
    def test_hash_join(self, mini_db):
        result = mini_db.execute(
            "SELECT p.title FROM publication p, journal j "
            "WHERE j.name = 'TKDE' AND p.jid = j.jid"
        )
        assert sorted(result.column()) == [
            "Adaptive Indexing",
            "Scalable Query Processing",
            "Streaming Joins Revisited",
        ]

    def test_three_way_join(self, mini_db):
        result = mini_db.execute(
            "SELECT p.title FROM publication p, writes w, author a "
            "WHERE a.name = 'Jane Doe' AND w.aid = a.aid AND w.pid = p.pid"
        )
        assert sorted(result.column()) == [
            "Adaptive Indexing", "Scalable Query Processing",
        ]

    def test_explicit_join_syntax(self, mini_db):
        result = mini_db.execute(
            "SELECT p.title FROM publication p JOIN journal j ON p.jid = j.jid "
            "WHERE j.name = 'TMC'"
        )
        assert result.column() == ["Mobile Network Survey"]

    def test_self_join(self, mini_db):
        result = mini_db.execute(
            "SELECT p.title FROM author a1, author a2, publication p, "
            "writes w1, writes w2 "
            "WHERE a1.name = 'John Smith' AND a2.name = 'Jane Doe' "
            "AND w1.aid = a1.aid AND w2.aid = a2.aid "
            "AND w1.pid = p.pid AND w2.pid = p.pid"
        )
        assert result.column() == ["Scalable Query Processing"]

    def test_cross_join_when_disconnected(self, mini_db):
        result = mini_db.execute("SELECT j.name, a.name FROM journal j, author a")
        assert len(result) == 4  # 2 journals x 2 authors


class TestAggregation:
    def test_count_star(self, mini_db):
        assert mini_db.execute("SELECT COUNT(*) FROM publication").scalar() == 4

    def test_count_column_ignores_nulls(self, mini_db):
        mini_db.insert("publication", (9, "Untitled", None, None))
        assert mini_db.execute("SELECT COUNT(year) FROM publication").scalar() == 4

    def test_count_distinct(self, mini_db):
        assert (
            mini_db.execute("SELECT COUNT(DISTINCT jid) FROM publication").scalar()
            == 2
        )

    def test_sum_avg_min_max(self, mini_db):
        row = mini_db.execute(
            "SELECT SUM(year), AVG(year), MIN(year), MAX(year) FROM publication"
        ).rows[0]
        assert row[0] == 2004 + 1999 + 2006 + 2010
        assert row[2] == 1999 and row[3] == 2010

    def test_aggregate_over_empty_input(self, mini_db):
        result = mini_db.execute(
            "SELECT COUNT(*) FROM publication WHERE year > 3000"
        )
        assert result.scalar() == 0

    def test_group_by(self, mini_db):
        result = mini_db.execute(
            "SELECT j.name, COUNT(p.pid) FROM publication p, journal j "
            "WHERE p.jid = j.jid GROUP BY j.name ORDER BY COUNT(p.pid) DESC"
        )
        assert result.rows == [("TKDE", 3), ("TMC", 1)]

    def test_having(self, mini_db):
        result = mini_db.execute(
            "SELECT j.name FROM publication p, journal j "
            "WHERE p.jid = j.jid GROUP BY j.name HAVING COUNT(p.pid) > 1"
        )
        assert result.column() == ["TKDE"]

    def test_min_of_empty_group_is_null(self, mini_db):
        result = mini_db.execute(
            "SELECT MIN(year) FROM publication WHERE year > 3000"
        )
        assert result.scalar() is None


class TestOrderLimitDistinct:
    def test_order_by_asc(self, mini_db):
        result = mini_db.execute(
            "SELECT title FROM publication ORDER BY year"
        )
        assert result.column()[0] == "Mobile Network Survey"

    def test_order_by_desc_with_limit(self, mini_db):
        result = mini_db.execute(
            "SELECT title FROM publication ORDER BY year DESC LIMIT 2"
        )
        assert result.column() == ["Adaptive Indexing", "Streaming Joins Revisited"]

    def test_distinct(self, mini_db):
        result = mini_db.execute("SELECT DISTINCT jid FROM publication")
        assert sorted(result.column()) == [1, 2]

    def test_limit_zero(self, mini_db):
        assert len(mini_db.execute("SELECT title FROM publication LIMIT 0")) == 0


class TestSubqueries:
    def test_scalar_subquery_comparison(self, mini_db):
        result = mini_db.execute(
            "SELECT title FROM publication "
            "WHERE year = (SELECT MAX(year) FROM publication)"
        )
        assert result.column() == ["Adaptive Indexing"]

    def test_in_subquery(self, mini_db):
        result = mini_db.execute(
            "SELECT name FROM journal WHERE jid IN "
            "(SELECT jid FROM publication WHERE year > 2005)"
        )
        assert result.column() == ["TKDE"]

    def test_scalar_subquery_shape_error(self, mini_db):
        with pytest.raises(ExecutionError):
            mini_db.execute(
                "SELECT title FROM publication "
                "WHERE year = (SELECT year FROM publication)"
            )


class TestErrors:
    def test_unknown_column_is_bind_error(self, mini_db):
        with pytest.raises(BindError):
            mini_db.execute("SELECT nope FROM publication")

    def test_result_scalar_shape_check(self, mini_db):
        with pytest.raises(ExecutionError):
            mini_db.execute("SELECT title FROM publication").scalar()
