"""Property-based tests (hypothesis) on the core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Obscurity, QueryFragmentGraph
from repro.core.fragments import FragmentContext, FragmentKind, QueryFragment
from repro.db.stemmer import stem
from repro.db.types import compare_values, like_match
from repro.embedding import NgramHashingModel
from repro.schema_graph import JoinEdge, JoinGraph, steiner_tree
from repro.sql import canonical_sql, parse_query, write_query
from tests.conftest import build_mini_db

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)
identifiers = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)


class TestStemmerProperties:
    @given(words)
    def test_stem_never_longer(self, word):
        assert len(stem(word)) <= len(word)

    @given(words)
    def test_stem_deterministic(self, word):
        assert stem(word) == stem(word)

    @given(words)
    def test_stem_is_lowercase_prefix_compatible(self, word):
        # Stems contain only characters drawn from the (lowercased) input
        # alphabet plus 'e'/'i' rewrites; at minimum they are non-empty
        # for non-empty input.
        assert stem(word)


class TestCompareProperties:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_trichotomy(self, a, b):
        relations = [
            compare_values(a, b, "<"),
            compare_values(a, b, "="),
            compare_values(a, b, ">"),
        ]
        assert sum(relations) == 1

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_le_is_lt_or_eq(self, a, b):
        assert compare_values(a, b, "<=") == (
            compare_values(a, b, "<") or compare_values(a, b, "=")
        )

    @given(words)
    def test_like_self_match(self, text):
        assert like_match(text, text)

    @given(words, words)
    def test_percent_prefix(self, a, b):
        assert like_match(a + b, a + "%")


class TestNgramModelProperties:
    @given(words, words)
    @settings(max_examples=50)
    def test_symmetry(self, a, b):
        model = NgramHashingModel()
        assert model.token_similarity(a, b) == model.token_similarity(b, a)

    @given(words)
    @settings(max_examples=50)
    def test_identity(self, token):
        assert NgramHashingModel().token_similarity(token, token) == 1.0

    @given(words, words)
    @settings(max_examples=50)
    def test_bounds(self, a, b):
        score = NgramHashingModel().token_similarity(a, b)
        assert 0.0 <= score <= 1.0


def fragment_strategy():
    contexts = st.sampled_from(
        [FragmentContext.SELECT, FragmentContext.WHERE, FragmentContext.FROM]
    )

    def build(context, relation, attribute, value):
        if context is FragmentContext.FROM:
            return QueryFragment(
                context=context, kind=FragmentKind.RELATION, relation=relation
            )
        if context is FragmentContext.WHERE:
            return QueryFragment(
                context=context,
                kind=FragmentKind.PREDICATE,
                relation=relation,
                attribute=attribute,
                operator="=",
                value=value,
            )
        return QueryFragment(
            context=context,
            kind=FragmentKind.ATTRIBUTE,
            relation=relation,
            attribute=attribute,
        )

    return st.builds(
        build,
        contexts,
        identifiers,
        identifiers,
        st.integers(0, 99),
    )


class TestQFGProperties:
    @given(st.lists(st.lists(fragment_strategy(), min_size=1, max_size=5),
                    min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_dice_bounds_and_symmetry(self, queries):
        qfg = QueryFragmentGraph(Obscurity.NO_CONST_OP)
        for fragments in queries:
            qfg.add_query(fragments)
        vertices = qfg.vertices()
        for a in vertices[:5]:
            for b in vertices[:5]:
                dice = qfg.dice(a, b)
                assert 0.0 <= dice <= 1.0
                assert dice == qfg.dice(b, a)

    @given(st.lists(st.lists(fragment_strategy(), min_size=1, max_size=5),
                    min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_ne_never_exceeds_nv(self, queries):
        qfg = QueryFragmentGraph(Obscurity.NO_CONST_OP)
        for fragments in queries:
            qfg.add_query(fragments)
        vertices = qfg.vertices()
        for a in vertices[:5]:
            for b in vertices[:5]:
                assert qfg.ne(a, b) <= min(qfg.nv(a), qfg.nv(b))

    @given(st.lists(st.lists(fragment_strategy(), min_size=1, max_size=5),
                    min_size=1, max_size=6))
    @settings(max_examples=30)
    def test_persistence_round_trip(self, queries):
        qfg = QueryFragmentGraph(Obscurity.NO_CONST_OP)
        for fragments in queries:
            qfg.add_query(fragments)
        clone = QueryFragmentGraph.from_dict(qfg.to_dict())
        assert clone.vertices() == qfg.vertices()
        for vertex in qfg.vertices():
            assert clone.nv(vertex) == qfg.nv(vertex)


class TestSteinerProperties:
    @st.composite
    def random_graph(draw):
        size = draw(st.integers(3, 8))
        graph = JoinGraph()
        for index in range(size):
            graph.add_instance(f"r{index}", f"r{index}")
        # A random spanning-ish tree plus extra edges keeps it connected.
        for index in range(1, size):
            parent = draw(st.integers(0, index - 1))
            graph.add_edge(JoinEdge(f"r{index}", "fk", f"r{parent}", "pk"))
        extra = draw(st.integers(0, 3))
        for _ in range(extra):
            a = draw(st.integers(0, size - 1))
            b = draw(st.integers(0, size - 1))
            if a != b:
                graph.add_edge(JoinEdge(f"r{a}", "fk2", f"r{b}", "pk2"))
        return graph

    @given(random_graph(), st.data())
    @settings(max_examples=50)
    def test_tree_spans_terminals(self, graph, data):
        size = graph.instance_count()
        count = data.draw(st.integers(1, min(4, size)))
        terminals = [f"r{i}" for i in range(count)]
        tree = steiner_tree(graph, terminals)
        assert tree is not None
        assert set(terminals) <= set(tree.vertices)
        # A tree has exactly |V| - 1 edges.
        assert len(tree.edges) == len(tree.vertices) - 1

    @given(random_graph(), st.data())
    @settings(max_examples=50)
    def test_cost_matches_edge_sum(self, graph, data):
        size = graph.instance_count()
        count = data.draw(st.integers(2, min(4, size)))
        terminals = [f"r{i}" for i in range(count)]
        tree = steiner_tree(graph, terminals)
        assert tree.cost == len(tree.edges)  # unit weights


class TestCanonicalProperties:
    @given(
        st.integers(1900, 2020),
        st.sampled_from(["=", "<", ">", "<=", ">="]),
    )
    @settings(max_examples=40)
    def test_canonical_idempotent(self, year, op):
        db = build_mini_db()
        sql = f"SELECT title FROM publication WHERE year {op} {year}"
        once = canonical_sql(sql, db.catalog)
        assert canonical_sql(once, db.catalog) == once

    @given(st.permutations(["year > 2000", "jid = 1", "pid < 9"]))
    @settings(max_examples=20)
    def test_conjunct_permutation_invariance(self, conjuncts):
        db = build_mini_db()
        sql = "SELECT title FROM publication WHERE " + " AND ".join(conjuncts)
        baseline = canonical_sql(
            "SELECT title FROM publication WHERE year > 2000 AND jid = 1 "
            "AND pid < 9",
            db.catalog,
        )
        assert canonical_sql(sql, db.catalog) == baseline


class TestParserProperties:
    @given(st.integers(0, 10**9), st.sampled_from(["=", "<", ">", "<=", ">="]))
    @settings(max_examples=40)
    def test_write_parse_fixpoint_numeric(self, value, op):
        sql = f"SELECT a FROM t WHERE b {op} {value}"
        query = parse_query(sql)
        assert parse_query(write_query(query)) == query

    @given(st.text(alphabet="abcdef 'é", min_size=0, max_size=12))
    @settings(max_examples=40)
    def test_string_literal_round_trip(self, value):
        from repro.sql.ast import Literal
        from repro.sql.writer import write_expr

        rendered = write_expr(Literal(value))
        query = parse_query(f"SELECT a FROM t WHERE b = {rendered}")
        predicate = query.where_conjuncts()[0]
        assert predicate.right == Literal(value)
