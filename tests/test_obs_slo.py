"""SLO engine: burn-rate math, alert hysteresis, evaluator, CLI."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.obs.journal import RequestJournal
from repro.obs.slo import (
    AlertState,
    SLOEvaluator,
    SLOPolicy,
    burn_rate,
    default_totals,
    evaluate_journal,
    merged_policy,
    resolve_policy,
    window_counts,
)
from repro.serving.telemetry import MetricsRegistry

events = st.lists(
    st.tuples(
        st.floats(0.0, 10_000.0, allow_nan=False, allow_infinity=False),
        st.booleans(),
    ),
    max_size=200,
)


class TestBurnRateProperties:
    @given(
        st.integers(0, 10**6), st.integers(0, 10**6),
        st.floats(0.001, 1.0, allow_nan=False),
    )
    def test_non_negative_and_empty_window_burns_nothing(
        self, bad, total, budget
    ):
        rate = burn_rate(min(bad, total), total, budget)
        assert rate >= 0.0
        if total == 0:
            assert rate == 0.0

    @given(st.integers(1, 10**6), st.floats(0.001, 1.0, allow_nan=False))
    def test_full_budget_consumption_is_burn_one(self, total, budget):
        # bad/total == budget  <=>  burn == 1 (within float error).
        bad = total * budget
        assert burn_rate(bad, total, budget) == pytest.approx(1.0)

    @given(
        st.integers(0, 1000), st.integers(1, 1000),
        st.floats(0.001, 1.0, allow_nan=False),
    )
    def test_monotone_in_bad_events(self, bad, total, budget):
        bad = min(bad, total)
        assert burn_rate(bad, total, budget) <= burn_rate(
            min(bad + 1, total), total, budget
        ) + 1e-12


class TestWindowCountsProperties:
    @given(events, st.floats(0.0, 10_000.0), st.floats(0.1, 10_000.0))
    def test_split_and_sum_equals_whole(self, stream, now, window):
        """Counting two halves separately sums to counting the whole."""
        half = len(stream) // 2
        whole = window_counts(stream, now, window)
        left = window_counts(stream[:half], now, window)
        right = window_counts(stream[half:], now, window)
        assert whole == (left[0] + right[0], left[1] + right[1])

    @given(events, st.floats(0.0, 10_000.0), st.floats(0.1, 10_000.0))
    def test_bad_never_exceeds_total(self, stream, now, window):
        total, bad = window_counts(stream, now, window)
        assert 0 <= bad <= total <= len(stream)

    @given(events, st.floats(0.0, 10_000.0))
    def test_widening_the_window_never_loses_events(self, stream, now):
        narrow = window_counts(stream, now, 10.0)
        wide = window_counts(stream, now, 1000.0)
        assert wide[0] >= narrow[0]
        assert wide[1] >= narrow[1]

    def test_half_open_boundaries(self):
        # (now - window, now]: the right edge is in, the left edge out.
        stream = [(90.0, True), (100.0, True)]
        assert window_counts(stream, 100.0, 10.0) == (1, 1)
        assert window_counts(stream, 100.0, 10.1) == (2, 2)


class TestAlertStateProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 20.0, allow_nan=False),
                st.floats(0.0, 20.0, allow_nan=False),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=200)
    def test_alert_invariants_over_any_burn_sequence(self, burns):
        """Set only when BOTH windows >= threshold; clear only under
        threshold * hysteresis; in between the state holds."""
        threshold, hysteresis = 6.0, 0.5
        state = AlertState()
        previous = False
        for fast, slow in burns:
            now = state.update(
                fast, slow, threshold=threshold, hysteresis=hysteresis
            )
            if not previous and now:
                assert fast >= threshold and slow >= threshold
            if previous and not now:
                assert max(fast, slow) < threshold * hysteresis
            previous = now

    def test_hysteresis_prevents_flapping(self):
        state = AlertState()
        assert state.update(7.0, 7.0, threshold=6.0, hysteresis=0.5)
        # Hovering just below the set threshold must not clear.
        assert state.update(5.9, 5.9, threshold=6.0, hysteresis=0.5)
        assert state.update(3.1, 0.0, threshold=6.0, hysteresis=0.5)
        assert not state.update(2.9, 2.9, threshold=6.0, hysteresis=0.5)
        # And a single hot window never re-sets the alert on its own.
        assert not state.update(10.0, 1.0, threshold=6.0, hysteresis=0.5)


class TestSLOPolicy:
    def test_round_trip_codec(self):
        policy = SLOPolicy(
            latency_p99_ms=250.0, error_rate=0.02,
            fast_window_seconds=60.0, slow_window_seconds=600.0,
        )
        assert SLOPolicy.from_dict(policy.to_dict()) == policy

    def test_undeclared_objectives_stay_undeclared(self):
        policy = SLOPolicy(error_rate=0.05)
        assert "latency_p99_ms" not in policy.to_dict()
        assert policy.objectives() == ["error_rate"]

    def test_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ConfigError, match="unknown slo key"):
            SLOPolicy.from_dict({"error_rate": 0.05, "latency_p9_ms": 1.0})
        with pytest.raises(ConfigError, match="at least one objective"):
            SLOPolicy.from_dict({})
        with pytest.raises(ConfigError, match="error_rate"):
            SLOPolicy(error_rate=1.5)
        with pytest.raises(ConfigError, match="windows"):
            SLOPolicy(error_rate=0.05, fast_window_seconds=600.0,
                      slow_window_seconds=60.0)

    def test_resolve_and_merge(self):
        default = SLOPolicy(error_rate=0.05)
        own = SLOPolicy(latency_p99_ms=100.0)
        assert resolve_policy(own, default) is own
        assert resolve_policy(None, default) is default
        merged = merged_policy(default, burn_threshold=10.0)
        assert merged.burn_threshold == 10.0
        assert merged_policy(default) is default


class TestSLOEvaluator:
    def policy(self, **extra):
        defaults = dict(
            latency_p99_ms=100.0, error_rate=0.1,
            fast_window_seconds=60.0, slow_window_seconds=600.0,
        )
        defaults.update(extra)
        return SLOPolicy(**defaults)

    def test_no_alert_on_empty_windows(self):
        registry = MetricsRegistry()
        evaluator = SLOEvaluator(self.policy(), registry)
        for step in range(5):
            report = evaluator.evaluate(now=1000.0 + step * 30.0)
            assert not report.alerting
            assert all(o.fast_burn == 0.0 for o in report.objectives)

    def test_error_burn_sets_and_clears_with_hysteresis(self):
        registry = MetricsRegistry()
        totals = {"requests": 0, "errors": 0, "cache_hits": 0,
                  "cache_misses": 0, "feedback_total": 0,
                  "feedback_rejected": 0}
        evaluator = SLOEvaluator(
            self.policy(), registry, totals_fn=lambda: dict(totals)
        )
        now = 10_000.0
        evaluator.evaluate(now=now)
        # Everything fails ("requests" counts successes, "errors" adds
        # to the denominator): burn 1/0.1 = 10 >= 6 in both windows.
        totals["errors"] += 100
        now += 30.0
        report = evaluator.evaluate(now=now)
        status = next(
            o for o in report.objectives if o.objective == "error_rate"
        )
        assert status.alerting and status.fast_burn == pytest.approx(10.0)
        # Recovery: enough clean traffic pulls both windows under
        # threshold * hysteresis (= 3, i.e. error rate < 30%).
        totals["requests"] += 2000
        now += 700.0  # the bad sample ages out of both windows
        report = evaluator.evaluate(now=now)
        now += 30.0
        totals["requests"] += 100
        report = evaluator.evaluate(now=now)
        status = next(
            o for o in report.objectives if o.objective == "error_rate"
        )
        assert not status.alerting

    def test_latency_objective_counts_slow_requests_exactly(self):
        registry = MetricsRegistry()
        evaluator = SLOEvaluator(self.policy(), registry)
        now = time.monotonic()
        for fast_ms in (10.0, 20.0, 30.0):
            registry.record_latency("translate", fast_ms / 1000.0)
        for slow_ms in (150.0, 250.0):
            registry.record_latency("translate", slow_ms / 1000.0)
        report = evaluator.evaluate(now=now + 1.0)
        status = next(
            o for o in report.objectives if o.objective == "latency_p99_ms"
        )
        assert status.fast_events == 5
        # 2 of 5 over 100 ms against the fixed 1% budget: burn = 40.
        assert status.fast_burn == pytest.approx(40.0)

    def test_publishes_burn_and_alert_gauges(self):
        registry = MetricsRegistry()
        evaluator = SLOEvaluator(self.policy(), registry)
        evaluator.evaluate(now=123.0)
        assert evaluator.last_report is not None
        gauges = registry.snapshot()["gauges"]
        assert 'slo_burn_rate{objective="error_rate",window="fast"}' in gauges
        assert 'slo_alert{objective="latency_p99_ms"}' in gauges

    def test_default_totals_reads_registry_counters(self):
        registry = MetricsRegistry()
        registry.increment("requests", 7)
        registry.increment("translate_errors", 2)
        registry.increment("feedback", labels={"verdict": "accept"})
        registry.increment("feedback", labels={"verdict": "reject"})
        registry.increment("feedback", labels={"verdict": "correct"})
        totals = default_totals(registry)
        assert totals["requests"] == 7
        assert totals["errors"] == 2
        assert totals["feedback_total"] == 3
        # reject AND correct burn budget; accept does not.
        assert totals["feedback_rejected"] == 2


def write_journal(directory, rows):
    journal = RequestJournal(directory, flush_interval=3600.0)
    for row in rows:
        assert journal.offer(row)
    journal.close()


def request_row(ts, tenant="mas", latency_ms=20.0, cache_hit=False):
    return ("request", ts, tenant, "papers", None, None, latency_ms,
            cache_hit, "v1", None)


class TestEvaluateJournal:
    def test_healthy_journal_reports_healthy(self, tmp_path):
        base = 1_700_000_000.0
        write_journal(
            tmp_path, [request_row(base + i) for i in range(20)]
        )
        policy = SLOPolicy(latency_p99_ms=100.0, error_rate=0.1)
        reports = evaluate_journal(tmp_path, policy)
        assert set(reports) == {"mas"}
        assert reports["mas"].healthy and not reports["mas"].alerting

    def test_error_storm_alerts_per_tenant(self, tmp_path):
        base = 1_700_000_000.0
        rows = [request_row(base + i, tenant="good") for i in range(10)]
        rows += [
            ("error", base + i, "bad", "papers", None, "TranslationError",
             5.0, "v1")
            for i in range(10)
        ]
        write_journal(tmp_path, rows)
        policy = SLOPolicy(error_rate=0.1)
        reports = evaluate_journal(tmp_path, policy)
        assert not reports["good"].alerting
        assert reports["bad"].alerting

    def test_feedback_rejects_burn_budget(self, tmp_path):
        base = 1_700_000_000.0
        rows = [
            ("feedback", base + i, "mas", verdict, None, None, None, None)
            for i, verdict in enumerate(
                ["accept", "reject", "correct", "reject"]
            )
        ]
        write_journal(tmp_path, rows)
        policy = SLOPolicy(feedback_reject_rate=0.1)
        report = evaluate_journal(tmp_path, policy)["mas"]
        status = report.objectives[0]
        assert status.slow_events == 4
        # 3 of 4 non-accept over a 0.1 budget: burn 7.5, alerting.
        assert status.slow_burn == pytest.approx(7.5)
        assert report.alerting

    def test_windows_anchor_at_newest_record(self, tmp_path):
        base = 1_700_000_000.0
        # Old errors, then an hour of silence, then clean traffic: the
        # fast window must only see the clean tail.
        rows = [
            ("error", base + i, "mas", "x", None, "TranslationError",
             5.0, "v1")
            for i in range(5)
        ]
        rows += [request_row(base + 7200.0 + i) for i in range(10)]
        write_journal(tmp_path, rows)
        policy = SLOPolicy(error_rate=0.1)
        report = evaluate_journal(tmp_path, policy)["mas"]
        status = report.objectives[0]
        assert status.fast_burn == 0.0
        assert not report.alerting


class TestSLOCli:
    def test_journal_replay_exit_codes(self, tmp_path, capsys):
        base = 1_700_000_000.0
        write_journal(tmp_path, [request_row(base + i) for i in range(5)])
        code = cli_main([
            "slo", "--journal", str(tmp_path), "--error-rate", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "status: healthy" in out
        assert "error_rate" in out

    def test_alerting_journal_exits_one(self, tmp_path, capsys):
        base = 1_700_000_000.0
        rows = [
            ("error", base + i, "mas", "x", None, "TranslationError",
             5.0, "v1")
            for i in range(10)
        ]
        write_journal(tmp_path, rows)
        code = cli_main([
            "slo", "--journal", str(tmp_path), "--error-rate", "0.1",
        ])
        assert code == 1
        assert "ALERTING" in capsys.readouterr().out

    def test_requires_exactly_one_source(self, tmp_path, capsys):
        assert cli_main(["slo"]) == 2
        assert cli_main([
            "slo", "--url", "http://127.0.0.1:1", "--journal", str(tmp_path),
        ]) == 2
        err = capsys.readouterr().err
        assert "exactly one" in err

    def test_unreachable_url_exits_two(self, capsys):
        assert cli_main(["slo", "--url", "http://127.0.0.1:9"]) == 2
        assert "could not fetch" in capsys.readouterr().err
