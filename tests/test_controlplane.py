"""Control-plane store and plane tests: durability, idempotency, concurrency.

The multi-process correctness battery for the PR's tentpole: concurrent
writers on one WAL-mode SQLite store (threads *and* a subprocess), the
atomic idempotency claim under a same-key race, and the feedback table's
append/consume contract.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.controlplane import (
    AUTO_KEY_PREFIX,
    ControlPlane,
    ControlPlaneStore,
    encode_stored_response,
    learnable_sql,
    validate_feedback_payload,
)
from repro.errors import ControlPlaneError, ServingError
from repro.serving.wire import TranslationRequest


class TestStore:
    def test_cache_survives_handles(self, tmp_path):
        """An entry written by one handle is read by a second (restart)."""
        path = tmp_path / "cp.db"
        with ControlPlaneStore(path) as a:
            a.cache_put("t", "fp", "k", '{"sql": "SELECT 1"}')
        with ControlPlaneStore(path) as b:
            assert b.cache_get("t", "fp", "k") == '{"sql": "SELECT 1"}'
            assert b.cache_get("t", "other-fp", "k") is None
            assert b.cache_get("other", "fp", "k") is None

    def test_cache_prune_keeps_newest(self, tmp_path):
        with ControlPlaneStore(tmp_path / "cp.db") as store:
            for i in range(10):
                store.cache_put("t", "fp", f"k{i}", "{}", ts=float(i))
            removed = store.cache_prune(keep=3)
            assert removed == 7
            assert store.cache_get("t", "fp", "k9") is not None
            assert store.cache_get("t", "fp", "k0") is None

    def test_idempotency_lifecycle(self, tmp_path):
        with ControlPlaneStore(tmp_path / "cp.db") as store:
            assert store.idempotency_begin("t", "key", "req") == ("claimed", None)
            # Same key, same request, still in flight elsewhere.
            assert store.idempotency_begin("t", "key", "req") == ("pending", None)
            # Same key, different body: the 409 path.
            assert store.idempotency_begin("t", "key", "other") == (
                "conflict", None,
            )
            store.idempotency_complete("t", "key", '{"done": 1}')
            assert store.idempotency_begin("t", "key", "req") == (
                "replay", '{"done": 1}',
            )
            assert store.idempotency_get("t", "key") == '{"done": 1}'

    def test_idempotency_release_reopens_key(self, tmp_path):
        """A failed compute releases its claim so a retry can try again."""
        with ControlPlaneStore(tmp_path / "cp.db") as store:
            assert store.idempotency_begin("t", "key", "req")[0] == "claimed"
            store.idempotency_release("t", "key")
            assert store.idempotency_begin("t", "key", "req")[0] == "claimed"

    def test_idempotency_release_never_drops_completed(self, tmp_path):
        with ControlPlaneStore(tmp_path / "cp.db") as store:
            store.idempotency_begin("t", "key", "req")
            store.idempotency_complete("t", "key", "{}")
            store.idempotency_release("t", "key")  # only deletes pending
            assert store.idempotency_begin("t", "key", "req")[0] == "replay"

    def test_idempotency_prune_expires_old_keys(self, tmp_path):
        with ControlPlaneStore(tmp_path / "cp.db") as store:
            store.idempotency_begin("t", "old", "r", ts=100.0)
            store.idempotency_begin("t", "new", "r", ts=1000.0)
            removed = store.idempotency_prune(ttl_seconds=600.0, now=1100.0)
            assert removed == 1
            assert store.idempotency_begin("t", "old", "r")[0] == "claimed"
            assert store.idempotency_begin("t", "new", "r")[0] == "pending"

    def test_response_resolution(self, tmp_path):
        with ControlPlaneStore(tmp_path / "cp.db") as store:
            store.record_response(
                "rid-1", "t", trace_id="tr-1", nlq="q", sql="SELECT 1",
            )
            by_rid = store.find_response("t", request_id="rid-1")
            assert by_rid["sql"] == "SELECT 1"
            by_trace = store.find_response("t", trace_id="tr-1")
            assert by_trace["request_id"] == "rid-1"
            assert store.find_response("t", request_id="nope") is None
            assert store.find_response("other", request_id="rid-1") is None

    def test_feedback_append_and_cursor(self, tmp_path):
        with ControlPlaneStore(tmp_path / "cp.db") as store:
            first = store.add_feedback(
                "t", "accept", request_id="r1", trace_id=None,
                nlq="q", sql="SELECT 1", corrected_sql=None,
            )
            second = store.add_feedback(
                "t", "reject", request_id=None, trace_id=None,
                nlq=None, sql=None, corrected_sql=None,
            )
            assert second > first
            rows = store.feedback_after("t", 0)
            assert [row["verdict"] for row in rows] == ["accept", "reject"]
            # The cursor contract: nothing at or before after_id returns.
            assert store.feedback_after("t", first)[0]["verdict"] == "reject"
            assert store.feedback_after("t", second) == []
            assert store.feedback_after("other", 0) == []

    def test_stats_counts_rows(self, tmp_path):
        with ControlPlaneStore(tmp_path / "cp.db") as store:
            store.cache_put("t", "fp", "k", "{}")
            store.add_feedback(
                "t", "reject", request_id=None, trace_id=None,
                nlq=None, sql=None, corrected_sql=None,
            )
            stats = store.stats()
            assert stats["rows"]["cache"] == 1
            assert stats["rows"]["feedback"] == 1
            assert stats["feedback_by_verdict"] == {"reject": 1}
            assert stats["size_bytes"] > 0


class TestStoreConcurrency:
    def test_threaded_writers_one_store(self, tmp_path):
        """Many threads hammering one handle: WAL + per-thread conns hold."""
        store = ControlPlaneStore(tmp_path / "cp.db")
        errors: list[Exception] = []

        def write(worker: int) -> None:
            try:
                for i in range(25):
                    store.cache_put("t", "fp", f"w{worker}-k{i}", "{}")
                    store.add_feedback(
                        "t", "accept", request_id=None, trace_id=None,
                        nlq=None, sql=f"SELECT {worker}", corrected_sql=None,
                    )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = store.stats()
        assert stats["rows"]["cache"] == 200
        assert stats["rows"]["feedback"] == 200
        store.close()

    def test_idempotency_claim_race_single_winner(self, tmp_path):
        """N racing claimants on one key: exactly one wins, across handles."""
        path = tmp_path / "cp.db"
        ControlPlaneStore(path).close()  # create the schema up front
        outcomes: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def claim() -> None:
            store = ControlPlaneStore(path)
            try:
                barrier.wait()
                outcome, _ = store.idempotency_begin("t", "hot-key", "req")
                with lock:
                    outcomes.append(outcome)
            finally:
                store.close()

        threads = [threading.Thread(target=claim) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("claimed") == 1
        assert outcomes.count("pending") == 5

    def test_subprocess_writer_shares_store(self, tmp_path):
        """A second *process* writes; this process reads it back (WAL)."""
        path = tmp_path / "cp.db"
        with ControlPlaneStore(path) as store:
            store.cache_put("t", "fp", "local", "{}")
            script = (
                "from repro.controlplane import ControlPlaneStore\n"
                f"store = ControlPlaneStore({str(path)!r})\n"
                "store.cache_put('t', 'fp', 'remote', '{\"from\": \"child\"}')\n"
                "store.add_feedback('t', 'correct', request_id=None,"
                " trace_id=None, nlq='q', sql=None,"
                " corrected_sql='SELECT 42')\n"
                "assert store.cache_get('t', 'fp', 'local') is not None\n"
                "store.close()\n"
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                timeout=60,
                env={"PYTHONPATH": str(Path(__file__).parent.parent / "src")},
            )
            assert proc.returncode == 0, proc.stderr
            assert store.cache_get("t", "fp", "remote") == '{"from": "child"}'
            rows = store.feedback_after("t", 0)
            assert rows and rows[0]["corrected_sql"] == "SELECT 42"


class TestPlane:
    def test_request_key_canonicalization(self, tmp_path):
        plane = ControlPlane(tmp_path / "cp.db")
        try:
            a = plane.request_key(TranslationRequest.of("papers by X"))
            b = plane.request_key(TranslationRequest.of("papers by X"))
            c = plane.request_key(TranslationRequest.of("papers by Y"))
            assert a == b != c
            # Delivery options (limit/observe) do not change the key.
            limited = TranslationRequest(nlq="papers by X", limit=3)
            observed = TranslationRequest(nlq="papers by X", observe=True)
            assert plane.request_key(limited) == a
            assert plane.request_key(observed) == a
        finally:
            plane.close()

    def test_write_behind_flush_lands_rows(self, tmp_path):
        path = tmp_path / "cp.db"
        plane = ControlPlane(path)
        try:
            payload = encode_stored_response("rid-1", [], [], {})
            plane.store.cache_put("t", "fp", "k", payload)
            plane.flush()
        finally:
            plane.close()
        with ControlPlaneStore(path) as store:
            decoded = json.loads(store.cache_get("t", "fp", "k"))
            assert decoded["request_id"] == "rid-1"

    def test_invalid_ttl_rejected(self, tmp_path):
        with pytest.raises(ControlPlaneError, match="ttl"):
            ControlPlane(tmp_path / "cp.db", idempotency_ttl_seconds=0)

    def test_submit_feedback_unknown_reference(self, tmp_path):
        with ControlPlane(tmp_path / "cp.db") as plane:
            with pytest.raises(ServingError, match="unknown response"):
                plane.submit_feedback("t", "reject", request_id="missing")

    def test_submit_feedback_disabled(self, tmp_path):
        with ControlPlane(tmp_path / "cp.db", feedback=False) as plane:
            with pytest.raises(ServingError, match="disabled"):
                plane.submit_feedback("t", "reject", sql="SELECT 1")

    def test_accept_requires_sql(self, tmp_path):
        with ControlPlane(tmp_path / "cp.db") as plane:
            with pytest.raises(ServingError, match="accept"):
                plane.submit_feedback("t", "accept", nlq="q")

    def test_auto_key_prefix_is_stable_contract(self):
        # http clients never send auto- keys; the fallback namespace is ours.
        assert AUTO_KEY_PREFIX == "auto-"


class TestFeedbackCodec:
    def test_strict_fields(self):
        with pytest.raises(ServingError, match="unknown feedback field"):
            validate_feedback_payload({"verdict": "accept", "vote": 1})

    def test_verdict_whitelist(self):
        with pytest.raises(ServingError, match="verdict must be one of"):
            validate_feedback_payload({"verdict": "love-it", "sql": "x"})

    def test_correct_requires_corrected_sql(self):
        with pytest.raises(ServingError, match="corrected_sql"):
            validate_feedback_payload({"verdict": "correct", "trace_id": "t"})

    def test_must_reference_something(self):
        with pytest.raises(ServingError, match="reference a prior response"):
            validate_feedback_payload({"verdict": "accept"})

    def test_learnable_sql_per_verdict(self):
        assert learnable_sql({"verdict": "accept", "sql": "A"}) == "A"
        assert learnable_sql(
            {"verdict": "correct", "sql": "A", "corrected_sql": "B"}
        ) == "B"
        assert learnable_sql({"verdict": "reject", "sql": "A"}) is None
