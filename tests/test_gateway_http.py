"""Gateway HTTP surface tests: routing, envelopes, reload, admission."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import EngineConfig
from repro.gateway import Gateway, GatewayConfig, TenantConfig, make_gateway_server
from repro.serving.wire import TranslationResponse


def _get(port: int, path: str):
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(port: int, path: str, payload, content_type="application/json"):
    data = (
        payload if isinstance(payload, bytes)
        else json.dumps(payload).encode("utf-8")
    )
    headers = {"Content-Type": content_type} if content_type else {}
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, headers=headers
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def gateway_port():
    """A live 3-tenant gateway (mas, yelp, imdb) behind one port."""
    config = GatewayConfig.from_dict({
        "tenants": {
            "mas": {"engine": {"dataset": "mas"}},
            "yelp": {"engine": {"dataset": "yelp"}},
            "imdb": {"engine": {"dataset": "imdb"}},
        },
        "learn_interval_seconds": 3600.0,  # scheduler on, never fires in-test
    })
    gateway = Gateway.from_config(config)
    server = make_gateway_server(gateway, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    gateway.start()
    try:
        yield gateway, server.server_address[1]
    finally:
        server.shutdown()
        gateway.close()


NLQS = {
    "mas": "return the papers after 2000",
    "yelp": "return the businesses",
    "imdb": "return the movies",
}


class TestRouting:
    def test_three_tenants_translate_through_one_port(self, gateway_port):
        gateway, port = gateway_port
        for tenant, nlq in NLQS.items():
            status, body = _post(port, f"/t/{tenant}/translate", {"nlq": nlq})
            assert status == 200, body
            assert body["count"] >= 1
            assert body["provenance"]["tenant"] == tenant
            assert body["provenance"]["dataset"] == tenant

    def test_concurrent_cross_tenant_traffic(self, gateway_port):
        gateway, port = gateway_port
        errors = []

        def hit(tenant: str) -> None:
            for _ in range(5):
                status, body = _post(
                    port, f"/t/{tenant}/translate", {"nlq": NLQS[tenant]}
                )
                if status != 200 or body["provenance"]["tenant"] != tenant:
                    errors.append((tenant, status, body))

        threads = [
            threading.Thread(target=hit, args=(tenant,))
            for tenant in NLQS
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors, errors

    def test_unknown_tenant_is_404_enveloped(self, gateway_port):
        _, port = gateway_port
        status, body = _post(port, "/t/enron/translate", {"nlq": "x"})
        assert status == 404
        assert "unknown tenant" in body["error"]
        assert body["status"] == 404

    def test_unknown_paths_are_404(self, gateway_port):
        _, port = gateway_port
        assert _get(port, "/t/mas/translate")[0] == 404  # GET on POST route
        assert _get(port, "/nope")[0] == 404
        assert _post(port, "/t/mas/nope", {})[0] == 404
        assert _post(port, "/t/mas", {})[0] == 404


class TestHealthAndStats:
    def test_healthz_and_readyz(self, gateway_port):
        gateway, port = gateway_port
        status, body = _get(port, "/healthz")
        assert status == 200
        assert body["tenants"] == 3
        status, body = _get(port, "/readyz")
        assert status == 200
        assert body["ready"] is True
        assert set(body["tenants"]) == {"mas", "yelp", "imdb"}

    def test_tenant_healthz(self, gateway_port):
        _, port = gateway_port
        status, body = _get(port, "/t/mas/healthz")
        assert status == 200
        assert body == {
            "tenant": "mas", "live": True, "artifact_version": None
        }
        assert _get(port, "/t/enron/healthz")[0] == 404

    def test_tenant_stats_are_isolated(self, gateway_port):
        gateway, port = gateway_port
        before = _get(port, "/t/yelp/stats")[1]["engine"]["metrics"][
            "counters"
        ].get("requests", 0)
        _post(port, "/t/mas/translate", {"nlq": NLQS["mas"]})
        status, mas_stats = _get(port, "/t/mas/stats")
        assert status == 200
        assert mas_stats["tenant"] == "mas"
        assert mas_stats["engine"]["metrics"]["counters"]["requests"] >= 1
        after = _get(port, "/t/yelp/stats")[1]["engine"]["metrics"][
            "counters"
        ].get("requests", 0)
        assert after == before  # mas traffic never shows up under yelp

    def test_aggregate_stats_span_tenants(self, gateway_port):
        gateway, port = gateway_port
        for tenant, nlq in NLQS.items():
            _post(port, f"/t/{tenant}/translate", {"nlq": nlq})
        status, stats = _get(port, "/stats")
        assert status == 200
        aggregate = stats["aggregate"]
        assert aggregate["tenants"] == 3 and aggregate["live_tenants"] == 3
        per_tenant = sum(
            snapshot["engine"]["metrics"]["counters"].get("requests", 0)
            for snapshot in stats["tenants"].values()
        )
        assert aggregate["requests"] == per_tenant >= 3
        status, metrics = _get(port, "/metrics?format=json")
        assert status == 200
        assert metrics["counters"]["gateway_requests"] >= 3
        assert "latency_window" in metrics

    def test_metrics_scrape_carries_tenant_labels(self, gateway_port):
        from repro.obs.prometheus import parse_exposition

        gateway, port = gateway_port
        for tenant, nlq in NLQS.items():
            _post(port, f"/t/{tenant}/translate", {"nlq": nlq})
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics"
        ) as response:
            content_type = response.headers.get("Content-Type", "")
            page = response.read().decode("utf-8")
        assert content_type.startswith("text/plain; version=0.0.4")
        samples = parse_exposition(page)
        assert any(
            labels == {} for labels, _ in samples["repro_gateway_requests_total"]
        )
        tenants_on_page = {
            labels["tenant"]
            for labels, _ in samples["repro_requests_total"]
            if "tenant" in labels
        }
        assert tenants_on_page == {"mas", "yelp", "imdb"}
        assert any(
            "tenant" in labels
            for labels, _ in samples["repro_translate_latency_seconds_bucket"]
        )

    def test_admin_traces_filters_by_tenant(self, gateway_port):
        gateway, port = gateway_port
        status, body = _post(port, "/t/mas/translate", {"nlq": NLQS["mas"]})
        assert status == 200
        status, payload = _get(port, "/admin/traces?tenant=mas")
        assert status == 200
        assert payload["count"] >= 1
        assert all(t["tenant"] == "mas" for t in payload["traces"])
        status, everything = _get(port, "/admin/traces")
        assert status == 200
        assert everything["count"] >= payload["count"]
        assert _get(port, "/admin/traces?tenant=enron")[0] == 404

    def test_observe_queues_for_the_scheduler(self, gateway_port):
        gateway, port = gateway_port
        before = gateway.host("mas").engine.service.pending_observations
        status, _ = _post(
            port, "/t/mas/translate",
            {"nlq": NLQS["mas"], "observe": True},
        )
        assert status == 200
        assert (
            gateway.host("mas").engine.service.pending_observations
            == before + 1
        )


class TestUniformErrorEnvelope:
    def test_malformed_json_is_400_on_all_post_routes(self, gateway_port):
        _, port = gateway_port
        for path in ("/t/mas/translate", "/admin/reload"):
            status, body = _post(port, path, b"{not json")
            assert status == 400, path
            assert "not valid JSON" in body["error"]
            assert body["status"] == 400

    def test_unsupported_content_type_is_400(self, gateway_port):
        _, port = gateway_port
        for path in ("/t/mas/translate", "/admin/reload"):
            status, body = _post(
                port, path, {"nlq": "x"}, content_type="text/plain"
            )
            assert status == 400, path
            assert "unsupported content type" in body["error"]
            assert body["status"] == 400

    def test_json_with_charset_parameter_is_accepted(self, gateway_port):
        _, port = gateway_port
        status, _ = _post(
            port, "/t/mas/translate", {"nlq": NLQS["mas"]},
            content_type="application/json; charset=utf-8",
        )
        assert status == 200

    def test_unknown_request_field_is_400(self, gateway_port):
        _, port = gateway_port
        status, body = _post(port, "/t/mas/translate", {"nlqq": "x"})
        assert status == 400
        assert "unknown request field" in body["error"]

    def test_empty_body_is_400(self, gateway_port):
        _, port = gateway_port
        status, body = _post(port, "/t/mas/translate", b"")
        assert status == 400
        assert "required" in body["error"]


class TestAdminReload:
    def test_reload_all_tenants(self, gateway_port):
        gateway, port = gateway_port
        status, body = _post(port, "/admin/reload", {})
        assert status == 200
        swapped = {entry["tenant"] for entry in body["reloads"]}
        assert swapped == {"mas", "yelp", "imdb"}
        # Log-built tenants have no artifact version on either side.
        assert all(
            entry["old_version"] is None and entry["new_version"] is None
            for entry in body["reloads"]
        )
        # The gateway still serves after swapping everything.
        status, _ = _post(port, "/t/mas/translate", {"nlq": NLQS["mas"]})
        assert status == 200

    def test_reload_single_tenant(self, gateway_port):
        gateway, port = gateway_port
        before = gateway.host("yelp").reload_count
        status, body = _post(port, "/admin/reload", {"tenant": "yelp"})
        assert status == 200
        assert [entry["tenant"] for entry in body["reloads"]] == ["yelp"]
        assert gateway.host("yelp").reload_count == before + 1

    def test_reload_unknown_tenant_is_404(self, gateway_port):
        _, port = gateway_port
        status, body = _post(port, "/admin/reload", {"tenant": "enron"})
        assert status == 404
        assert "unknown tenant" in body["error"]

    def test_reload_unknown_field_is_400(self, gateway_port):
        _, port = gateway_port
        status, body = _post(port, "/admin/reload", {"tenannt": "mas"})
        assert status == 400
        assert "unknown reload field" in body["error"]

    def test_reload_non_string_tenant_is_400(self, gateway_port):
        _, port = gateway_port
        status, body = _post(port, "/admin/reload", {"tenant": 7})
        assert status == 400
        assert "tenant" in body["error"]


class TestWarmupIs503:
    def test_configured_tenant_without_live_engine_is_503_not_404(self):
        # During background warm-up a configured tenant must answer with
        # a retryable 503 — only unknown tenants get the permanent 404.
        gate = threading.Event()
        built = threading.Event()

        def slow_factory():
            gate.wait(10.0)
            from repro.api import Engine

            engine = Engine.from_config(EngineConfig(dataset="mas"))
            built.set()
            return engine

        gateway = Gateway.from_config(
            {"tenants": {"mas": {"engine": {"dataset": "mas"}}}},
            engine_factories={"mas": slow_factory},
        )
        server = make_gateway_server(gateway, port=0)
        port = server.server_address[1]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        warmup = threading.Thread(target=gateway.start, daemon=True)
        warmup.start()
        try:
            status, body = _post(
                port, "/t/mas/translate", {"nlq": NLQS["mas"]}
            )
            assert status == 503
            assert "retry" in body["error"]
            assert body["status"] == 503
            assert _get(port, "/readyz")[0] == 503
            assert _get(port, "/t/mas/healthz")[0] == 503
            # Unknown tenants stay 404 throughout.
            assert _post(port, "/t/enron/translate", {"nlq": "x"})[0] == 404
            gate.set()
            assert built.wait(60.0)
            warmup.join(60.0)
            status, _ = _post(port, "/t/mas/translate", {"nlq": NLQS["mas"]})
            assert status == 200
        finally:
            gate.set()
            server.shutdown()
            gateway.close()


class TestAdmission:
    def test_overflow_is_429(self):
        """A saturated tenant sheds load with 429, not queueing or 500s."""
        gate = threading.Event()
        release = threading.Event()

        class BlockingEngine:
            templar = None
            artifact_version = None

            class service:  # noqa: N801 - attribute stand-in
                pending_observations = 0

            def translate(self, request, *, observe=None, idempotency_key=None):
                gate.set()
                release.wait(10.0)
                return TranslationResponse(request=request, results=[])

            def take_pending(self):
                return []

            def stats(self):
                return {
                    "caches": [],
                    "metrics": {"counters": {}},
                    "pending_observations": 0,
                }

            def close(self):
                pass

        config = GatewayConfig(
            tenants={
                "solo": TenantConfig(
                    engine=EngineConfig(dataset="mas"), max_in_flight=1
                )
            }
        )
        gateway = Gateway(
            config, engine_factories={"solo": BlockingEngine}
        )
        gateway.start()
        server = make_gateway_server(gateway, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            results = []
            blocker = threading.Thread(
                target=lambda: results.append(
                    _post(port, "/t/solo/translate", {"nlq": "x"})
                )
            )
            blocker.start()
            assert gate.wait(10.0)
            status, body = _post(port, "/t/solo/translate", {"nlq": "x"})
            assert status == 429
            assert "in-flight limit" in body["error"]
            assert body["status"] == 429
            release.set()
            blocker.join(10.0)
            assert results and results[0][0] == 200
            assert gateway.host("solo").rejected_count == 1
        finally:
            release.set()
            server.shutdown()
            gateway.close()


class TestJournaledGateway:
    @pytest.fixture()
    def journaled_gateway(self, tmp_path):
        """A 2-tenant gateway writing one shared, tenant-stamped journal."""
        config = GatewayConfig.from_dict({
            "tenants": {
                "mas": {"engine": {"dataset": "mas"}},
                "yelp": {"engine": {"dataset": "yelp"}},
            },
            "journal_dir": str(tmp_path / "journal"),
        })
        gateway = Gateway.from_config(config)
        server = make_gateway_server(gateway, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        gateway.start()
        try:
            yield gateway, server.server_address[1]
        finally:
            server.shutdown()
            gateway.close()

    def test_records_are_stamped_with_their_tenant(self, journaled_gateway):
        gateway, port = journaled_gateway
        for tenant in ("mas", "yelp"):
            status, _ = _post(
                port, f"/t/{tenant}/translate", {"nlq": NLQS[tenant]}
            )
            assert status == 200
        gateway.journal.flush()
        tenants = [r["tenant"] for r in gateway.journal.records()]
        assert tenants == ["mas", "yelp"]

    def test_admin_logs_query_answers_over_the_shared_journal(
        self, journaled_gateway
    ):
        gateway, port = journaled_gateway
        _post(port, "/t/mas/translate", {"nlq": NLQS["mas"]})
        _post(port, "/t/mas/translate", {"nlq": NLQS["mas"]})
        _post(port, "/t/yelp/translate", {"nlq": NLQS["yelp"]})
        status, body = _get(port, "/admin/logs/query?nlq=number+of+requests")
        assert status == 200, body
        assert body["rows"] == [[3]]
        # The gateway answered a question about itself with its own NLIDB.
        assert body["sql"].startswith("SELECT COUNT(")
        status, body = _get(
            port, "/admin/logs/query?nlq=slowest+tenant+today"
        )
        assert status == 200, body
        assert set(row[0] for row in body["rows"]) == {"mas", "yelp"}

    def test_reloads_are_journaled(self, journaled_gateway):
        gateway, port = journaled_gateway
        status, _ = _post(port, "/admin/reload", {"tenant": "mas"})
        assert status == 200
        gateway.journal.flush()
        reloads = [
            r for r in gateway.journal.records() if r["kind"] == "reload"
        ]
        assert len(reloads) == 1
        assert reloads[0]["tenant"] == "mas"

    def test_unjournaled_gateway_is_400(self, gateway_port):
        _, port = gateway_port
        status, body = _get(port, "/admin/logs/query?nlq=x")
        assert status == 400
        assert "journal" in body["error"]
        assert body["status"] == 400

    def test_traces_filter_excludes_other_tenants(self, journaled_gateway):
        """Traffic on two tenants; each filter sees only its own traces."""
        gateway, port = journaled_gateway
        for tenant in ("mas", "yelp"):
            status, _ = _post(
                port, f"/t/{tenant}/translate", {"nlq": NLQS[tenant]}
            )
            assert status == 200
        for tenant, other in (("mas", "yelp"), ("yelp", "mas")):
            status, payload = _get(port, f"/admin/traces?tenant={tenant}")
            assert status == 200
            assert payload["count"] >= 1
            seen = {t["tenant"] for t in payload["traces"]}
            assert seen == {tenant}
            assert other not in seen
