"""Beam-search enumeration: exact equivalence with the full product.

``map_keywords(keywords, limit=k)`` must return bit-identical
configurations — same mappings, same scores, same tie-breaks — to the
first ``k`` entries of the full enumeration, for any κ/λ.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_mini_db, build_mini_lexicon, build_mini_log

from repro.core import FragmentContext, Keyword, KeywordMetadata
from repro.core.keyword_mapper import KeywordMapper, ScoringParams
from repro.db import Column, ColumnType, Database, TableSchema
from repro.embedding import CompositeModel

SELECT = FragmentContext.SELECT
WHERE = FragmentContext.WHERE
FROM = FragmentContext.FROM


def kw(text, context, op=None, aggregates=()):
    return Keyword(
        text,
        KeywordMetadata(context=context, comparison_op=op, aggregates=aggregates),
    )


#: Keyword pool mixing every Algorithm-2 branch (relations, attributes,
#: values, numerics, aggregates) over the mini database.
KEYWORD_POOL = (
    kw("papers", SELECT),
    kw("papers", FROM),
    kw("journal", SELECT),
    kw("authors", SELECT),
    kw("TKDE", WHERE),
    kw("John Smith", WHERE),
    kw("after 2000", WHERE, op=">"),
    kw("before 2006", WHERE, op="<"),
    kw("number of papers", SELECT, aggregates=("COUNT",)),
    kw("Scalable Query Processing", WHERE),
)

_DB = build_mini_db()
_MODEL = CompositeModel(build_mini_lexicon())
_QFG = build_mini_log().build_qfg(_DB.catalog)


def make_mapper(kappa, lam, with_log):
    # max_configurations high enough that the full-product reference never
    # degrades: the comparison is against the true, undegraded ranking.
    params = ScoringParams(
        kappa=kappa, lam=lam, max_configurations=10_000_000
    )
    return KeywordMapper(
        _DB, _MODEL, qfg=_QFG if with_log else None, params=params
    )


@settings(max_examples=50, deadline=None)
@given(
    indices=st.lists(
        st.integers(min_value=0, max_value=len(KEYWORD_POOL) - 1),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    kappa=st.integers(min_value=1, max_value=8),
    lam=st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]),
    limit=st.integers(min_value=1, max_value=25),
    with_log=st.booleans(),
)
def test_beam_equals_product_prefix(indices, kappa, lam, limit, with_log):
    keywords = [KEYWORD_POOL[i] for i in indices]
    mapper = make_mapper(kappa, lam, with_log)
    full = mapper.map_keywords(keywords)
    beam = mapper.map_keywords(keywords, limit=limit)
    assert beam == full[:limit]
    # Bit-identical scores, not just approximately equal ranks.
    for got, expected in zip(beam, full):
        assert got.score == expected.score
        assert got.sigma_score == expected.sigma_score
        assert got.qfg_score == expected.qfg_score


def test_beam_zero_limit_is_empty():
    mapper = make_mapper(3, 0.8, True)
    assert mapper.map_keywords([kw("papers", SELECT)], limit=0) == []


def test_beam_exhausts_small_products():
    mapper = make_mapper(5, 0.8, True)
    keywords = [kw("papers", SELECT), kw("after 2000", WHERE, op=">")]
    full = mapper.map_keywords(keywords)
    assert mapper.map_keywords(keywords, limit=10_000) == full


def tie_flood_db(tables=3):
    """Every keyword 'gold' maps to ``tables`` exact-match candidates.

    Exact matches bypass the κ cut (they evict everything else), so
    repeating the keyword inflates the configuration product
    deterministically: ``tables ** n_keywords`` combinations.
    """
    db = Database("ties")
    for n in range(1, tables + 1):
        db.create_table(
            TableSchema(
                f"t{n}", [Column("val", ColumnType.TEXT, searchable=True)]
            )
        )
        db.insert(f"t{n}", ("gold",))
    return db


def test_product_truncation_reports_drop():
    """The max_configurations guard logs and surfaces the dropped count."""
    db = tie_flood_db(tables=3)
    params = ScoringParams(kappa=1, max_configurations=50)
    mapper = KeywordMapper(db, CompositeModel(), params=params)
    keywords = [kw("gold", WHERE)] * 4  # 3**4 = 81 > 50
    configs = mapper.map_keywords(keywords)
    assert configs
    # Degraded to kappa=1 per keyword: 1 combination kept, 80 dropped.
    assert len(configs) == 1
    assert mapper.take_truncation(keywords) == 80
    # Consuming the report resets it.
    assert mapper.take_truncation(keywords) == 0


def test_beam_path_reports_no_truncation(mini_db, mini_model):
    params = ScoringParams(kappa=2)
    mapper = KeywordMapper(mini_db, mini_model, params=params)
    keywords = [kw("papers", SELECT), kw("journal", SELECT)]
    assert mapper.map_keywords(keywords, limit=3)
    assert mapper.take_truncation(keywords) == 0


def test_truncation_surfaces_in_response_provenance():
    """A truncated request reports the drop through the serving layer."""
    from repro.serving.service import TranslationService, translate_request
    from repro.serving.wire import TranslationRequest

    db = tie_flood_db(tables=3)
    params = ScoringParams(kappa=1, max_configurations=50)
    mapper = KeywordMapper(db, CompositeModel(), params=params)

    class FullEnumerationNLIDB:
        """A custom backend that maps without a beam limit."""

        name = "full-enum"
        database = db
        _mapper = mapper

        def translate(self, keywords):
            self._mapper.map_keywords(list(keywords))
            return []

    service = TranslationService(FullEnumerationNLIDB(), max_workers=1)
    request = TranslationRequest(keywords=tuple([kw("gold", WHERE)] * 4))
    response = translate_request(service, request)
    assert response.provenance["configurations_truncated"] == 80
    # An untruncated request carries no marker.
    clean = translate_request(
        service, TranslationRequest(keywords=(kw("gold", WHERE),))
    )
    assert "configurations_truncated" not in clean.provenance
    service.close()


def test_truncation_surfaces_in_batch_provenance():
    """Batched requests also carry configurations_truncated (per request)."""
    from repro.api import Engine, EngineConfig
    from repro.datasets.base import BenchmarkDataset
    from repro.embedding import Lexicon
    from repro.nlidb import registry

    db = tie_flood_db(tables=3)
    params = ScoringParams(kappa=1, max_configurations=50)
    mapper = KeywordMapper(db, CompositeModel(), params=params)

    class FullEnumerationNLIDB:
        name = "full-enum"
        database = db

        def __init__(self):
            self._mapper = mapper

        def translate(self, keywords):
            self._mapper.map_keywords(list(keywords))
            return []

    @registry.register("full-enum-batch")
    def _factory(dataset, templar, *, max_configurations, params,
                 simulate_parse_failures):
        return FullEnumerationNLIDB()

    try:
        dataset = BenchmarkDataset(
            name="ties", database=db, items=[], lexicon=Lexicon()
        )
        config = EngineConfig(dataset="mas", backend="full-enum-batch")
        with Engine.from_config(config, dataset=dataset) as engine:
            truncating = tuple([kw("gold", WHERE)] * 4)
            clean = (kw("gold", WHERE),)
            responses = engine.translate_batch([truncating, clean, truncating])
        assert responses[0].provenance["configurations_truncated"] == 80
        assert "configurations_truncated" not in responses[1].provenance
        # The duplicate of a truncated request reports the same drop.
        assert responses[2].provenance["configurations_truncated"] == 80
    finally:
        registry.unregister("full-enum-batch")


def test_truncation_warning_logged(caplog):
    db = tie_flood_db(tables=3)
    params = ScoringParams(kappa=1, max_configurations=50)
    mapper = KeywordMapper(db, CompositeModel(), params=params)
    with caplog.at_level("WARNING", logger="repro.core.keyword_mapper"):
        mapper.map_keywords([kw("gold", WHERE)] * 4)
    assert any(
        "max_configurations" in record.message for record in caplog.records
    )
