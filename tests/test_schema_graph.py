"""Tests for the join graph, Steiner solver and FORK."""

import pytest

from repro.errors import GraphError
from repro.schema_graph import (
    JoinEdge,
    JoinGraph,
    SchemaGraph,
    fork_for_duplicates,
    steiner_tree,
    top_k_steiner_trees,
)
from repro.schema_graph.fork import fork


def mas_like_graph() -> JoinGraph:
    """The Figure 1 topology used by the paper's examples."""
    graph = JoinGraph()
    for relation in [
        "publication", "conference", "journal", "domain",
        "domain_conference", "domain_journal", "keyword",
        "publication_keyword", "domain_keyword", "author", "writes",
    ]:
        graph.add_instance(relation, relation)
    for edge in [
        ("publication", "cid", "conference", "cid"),
        ("publication", "jid", "journal", "jid"),
        ("domain_conference", "cid", "conference", "cid"),
        ("domain_conference", "did", "domain", "did"),
        ("domain_journal", "jid", "journal", "jid"),
        ("domain_journal", "did", "domain", "did"),
        ("publication_keyword", "pid", "publication", "pid"),
        ("publication_keyword", "kid", "keyword", "kid"),
        ("domain_keyword", "kid", "keyword", "kid"),
        ("domain_keyword", "did", "domain", "did"),
        ("writes", "aid", "author", "aid"),
        ("writes", "pid", "publication", "pid"),
    ]:
        graph.add_edge(JoinEdge(*edge))
    return graph


class TestJoinGraph:
    def test_from_catalog(self, mini_db):
        graph = JoinGraph.from_catalog(mini_db.catalog)
        assert graph.instance_count() == 4
        assert len(graph.edges) == 3

    def test_duplicate_instance_rejected(self):
        graph = JoinGraph()
        graph.add_instance("a", "a")
        with pytest.raises(GraphError):
            graph.add_instance("a", "a")

    def test_edge_endpoints_must_exist(self):
        graph = JoinGraph()
        graph.add_instance("a", "a")
        with pytest.raises(GraphError):
            graph.add_edge(JoinEdge("a", "x", "b", "y"))

    def test_neighbors(self):
        graph = mas_like_graph()
        assert len(graph.neighbors("publication")) == 4

    def test_copy_is_independent(self):
        graph = mas_like_graph()
        clone = graph.copy()
        clone.add_instance("extra", "extra")
        assert not graph.has_instance("extra")


class TestSteiner:
    def test_single_terminal(self):
        tree = steiner_tree(mas_like_graph(), ["publication"])
        assert tree.edges == frozenset()
        assert tree.score == 1.0

    def test_direct_edge(self):
        tree = steiner_tree(mas_like_graph(), ["publication", "journal"])
        assert tree.edge_count == 1
        assert tree.score == 1.0

    def test_paper_example2_shortest_path_trap(self):
        """Unit weights pick a 3-edge venue path, not the keyword path."""
        tree = steiner_tree(mas_like_graph(), ["publication", "domain"])
        assert tree.edge_count == 3
        assert "keyword" not in tree.vertices

    def test_log_weights_flip_to_keyword_path(self):
        """The paper's Example 6: cheap keyword-path edges win."""
        cheap = {
            ("publication_keyword", "publication"),
            ("publication_keyword", "keyword"),
            ("domain_keyword", "keyword"),
            ("domain_keyword", "domain"),
        }

        def log_weight(edge, source_relation, target_relation):
            if (source_relation, target_relation) in cheap:
                return 0.2
            return 1.0

        tree = steiner_tree(
            mas_like_graph(), ["publication", "domain"], log_weight
        )
        assert "keyword" in tree.vertices
        assert tree.edge_count == 4
        assert tree.cost == pytest.approx(0.8)

    def test_three_terminals(self):
        tree = steiner_tree(
            mas_like_graph(), ["author", "publication", "journal"]
        )
        assert {"author", "writes", "publication", "journal"} <= set(
            tree.vertices
        )

    def test_duplicate_terminals_deduplicated(self):
        tree = steiner_tree(mas_like_graph(), ["publication", "publication"])
        assert tree.edges == frozenset()

    def test_disconnected_returns_none(self):
        graph = JoinGraph()
        graph.add_instance("a", "a")
        graph.add_instance("b", "b")
        assert steiner_tree(graph, ["a", "b"]) is None

    def test_unknown_terminal_raises(self):
        with pytest.raises(GraphError):
            steiner_tree(mas_like_graph(), ["nope"])

    def test_empty_terminals_raise(self):
        with pytest.raises(GraphError):
            steiner_tree(mas_like_graph(), [])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            steiner_tree(
                mas_like_graph(),
                ["publication", "journal"],
                lambda e, s, t: -1.0,
            )

    def test_score_prefers_fewer_edges(self):
        short = steiner_tree(mas_like_graph(), ["publication", "journal"])
        long = steiner_tree(mas_like_graph(), ["publication", "domain"])
        assert short.score > long.score


class TestTopK:
    def test_costs_non_decreasing(self):
        # publication→domain has exactly three routes in the Figure 1
        # topology (conference, journal, keyword), so k=4 yields 3 trees.
        trees = top_k_steiner_trees(
            mas_like_graph(), ["publication", "domain"], 4
        )
        costs = [tree.cost for tree in trees]
        assert costs == sorted(costs)
        assert len(trees) == 3

    def test_trees_are_distinct(self):
        trees = top_k_steiner_trees(
            mas_like_graph(), ["publication", "domain"], 4
        )
        signatures = {tree.signature() for tree in trees}
        assert len(signatures) == len(trees)

    def test_first_matches_single_solve(self):
        graph = mas_like_graph()
        best = steiner_tree(graph, ["publication", "domain"])
        trees = top_k_steiner_trees(graph, ["publication", "domain"], 3)
        assert trees[0].cost == best.cost

    def test_k_zero(self):
        assert top_k_steiner_trees(mas_like_graph(), ["publication"], 0) == []

    def test_alternatives_include_both_venue_paths(self):
        trees = top_k_steiner_trees(
            mas_like_graph(), ["publication", "domain"], 3
        )
        via = {
            "conference" if "conference" in t.vertices else
            "journal" if "journal" in t.vertices else "keyword"
            for t in trees
        }
        assert {"conference", "journal"} <= via


class TestFork:
    def test_fork_clones_dependents(self):
        """Figure 4: forking author clones author and writes; publication
        stays shared."""
        graph = mas_like_graph()
        forked, clone = fork(graph, "author")
        assert clone == "author#2"
        assert forked.has_instance("writes#2")
        assert not forked.has_instance("publication#2")
        # The cloned writes links to the *shared* publication.
        edges = [
            e for e in forked.neighbors("writes#2") if e.touches("publication")
        ]
        assert len(edges) == 1

    def test_fork_preserves_original(self):
        graph = mas_like_graph()
        fork(graph, "author")
        assert not graph.has_instance("author#2")

    def test_fork_unknown_instance(self):
        with pytest.raises(GraphError):
            fork(mas_like_graph(), "nope")

    def test_fork_for_duplicates_terminals(self):
        graph = mas_like_graph()
        forked, terminals = fork_for_duplicates(
            graph, ["author", "author", "publication"]
        )
        assert terminals == ["author", "author#2", "publication"]

    def test_self_join_steiner_tree(self):
        """The paper's Example 7 join structure."""
        graph = mas_like_graph()
        forked, terminals = fork_for_duplicates(
            graph, ["author", "author", "publication"]
        )
        tree = steiner_tree(forked, terminals)
        assert {"author", "author#2", "writes", "writes#2", "publication"} == set(
            tree.vertices
        )
        assert tree.edge_count == 4

    def test_triple_fork(self):
        graph = mas_like_graph()
        forked, terminals = fork_for_duplicates(graph, ["author"] * 3)
        assert terminals == ["author", "author#2", "author#3"]
        tree = steiner_tree(forked, terminals + ["publication"])
        assert tree is not None
        assert len([v for v in tree.vertices if v.startswith("writes")]) == 3


class TestSchemaGraph:
    def test_definition1_stats(self, mini_db):
        graph = SchemaGraph(mini_db.catalog)
        stats = graph.stats()
        assert stats["relation_vertices"] == 4
        assert stats["attribute_vertices"] == 4 + 2 + 2 + 2
        assert stats["projection_edges"] == stats["attribute_vertices"]
        assert stats["fk_pk_edges"] == 3

    def test_weight_function(self, mini_db):
        graph = SchemaGraph(mini_db.catalog)
        assert graph.weight("publication", "publication.title") == 1.0
        assert graph.weight("publication", "journal") == float("inf")

    def test_join_graph_view(self, mini_db):
        graph = SchemaGraph(mini_db.catalog).join_graph()
        assert graph.instance_count() == 4
