"""Tracer, span-tree assembly, and tail-based trace retention."""

from __future__ import annotations

import time

import pytest

from repro.obs.trace import (
    MAX_SPANS_PER_TRACE,
    SpanSink,
    TraceStore,
    Tracer,
    build_trace,
    current_sink,
    format_trace,
    stage,
)


def _trace(trace_id: str, duration_s: float, error: Exception | None = None):
    return build_trace(
        trace_id,
        started=0.0,
        duration_s=duration_s,
        children=[],
        error=error,
    )


class TestTraceStore:
    def test_everything_kept_while_filling(self):
        store = TraceStore(keep_slowest=3)
        for index, duration in enumerate((0.001, 0.002, 0.003)):
            assert store.offer(_trace(f"t{index}", duration))
        assert len(store) == 3

    def test_slower_request_evicts_the_fastest_retained(self):
        store = TraceStore(keep_slowest=3)
        for index, duration in enumerate((0.001, 0.002, 0.003)):
            store.offer(_trace(f"t{index}", duration))
        assert store.offer(_trace("slow", 0.004))
        assert len(store) == 3
        assert store.get("t0") is None  # the 1 ms trace fell out
        assert store.get("slow") is not None

    def test_fast_request_rejected_once_full(self):
        store = TraceStore(keep_slowest=3)
        for index, duration in enumerate((0.002, 0.003, 0.004)):
            store.offer(_trace(f"t{index}", duration))
        assert not store.offer(_trace("fast", 0.0005))
        assert store.get("fast") is None
        assert len(store) == 3

    def test_would_keep_tracks_the_retention_floor(self):
        store = TraceStore(keep_slowest=2)
        assert store.would_keep(0.0001)  # filling: everything qualifies
        store.offer(_trace("a", 0.002))
        store.offer(_trace("b", 0.003))
        assert not store.would_keep(0.001)  # below the heap floor
        assert store.would_keep(0.005)

    def test_errors_always_kept_regardless_of_duration(self):
        store = TraceStore(keep_slowest=1, keep_errors=2)
        store.offer(_trace("slow", 5.0))
        boom = RuntimeError("boom")
        assert store.offer(_trace("err", 0.0001, error=boom))
        assert store.get("err").error["type"] == "RuntimeError"

    def test_error_ring_is_fifo_bounded(self):
        store = TraceStore(keep_slowest=1, keep_errors=2)
        for index in range(4):
            store.offer(_trace(f"e{index}", 0.001, error=ValueError(str(index))))
        assert store.get("e0") is None
        assert store.get("e1") is None
        assert store.get("e2") is not None
        assert store.get("e3") is not None

    def test_traces_lists_newest_first(self):
        store = TraceStore(keep_slowest=4)
        for index in range(3):
            trace = _trace(f"t{index}", 0.001)
            trace.started_unix = 1000.0 + index  # explicit arrival order
            store.offer(trace)
        listed = store.traces()
        assert [t.trace_id for t in listed] == ["t2", "t1", "t0"]
        assert [t.trace_id for t in store.traces(limit=1)] == ["t2"]

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            TraceStore(keep_slowest=0)
        with pytest.raises(ValueError):
            TraceStore(keep_errors=0)


class TestTracer:
    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        sink, token = tracer.begin()
        assert sink is None and token is None
        trace_id = tracer.finish(
            sink, token, started=0.0, duration_s=1.0, children=[]
        )
        assert trace_id is None
        assert len(tracer.store) == 0

    def test_stage_records_into_the_active_sink(self):
        tracer = Tracer()
        _, token = tracer.begin()
        # The sink is lazy: nothing is materialised until a stage runs.
        assert current_sink() is None
        with stage("alpha"):
            with stage("beta"):
                pass
        sink = current_sink()
        assert sink is not None
        tracer.reset(token)
        assert current_sink() is None
        assert [(row[0], row[1]) for row in sink.spans] == [
            ("alpha", 1), ("beta", 2),
        ]

    def test_stage_without_sink_is_a_noop(self):
        assert current_sink() is None
        with stage("outside"):
            pass  # must not raise or record anywhere

    def test_finish_retains_and_ids_are_unique(self):
        tracer = Tracer(keep_slowest=4)
        ids = set()
        for _ in range(3):
            sink, token = tracer.begin()
            trace_id = tracer.finish(
                sink, token, started=0.0, duration_s=0.01, children=[]
            )
            assert trace_id is not None
            ids.add(trace_id)
        assert len(ids) == 3
        assert all(tracer.store.get(trace_id) for trace_id in ids)

    def test_error_requests_always_get_a_trace(self):
        tracer = Tracer(keep_slowest=1)
        sink, token = tracer.begin()
        tracer.finish(sink, token, started=0.0, duration_s=9.0, children=[])
        sink, token = tracer.begin()
        trace_id = tracer.finish(
            sink,
            token,
            started=0.0,
            duration_s=0.0001,  # far below the floor
            children=[],
            error=ValueError("bad input"),
        )
        assert trace_id is not None
        assert tracer.store.get(trace_id).error["message"] == "bad input"

    def test_span_cap_bounds_one_trace(self):
        tracer = Tracer()
        _, token = tracer.begin()
        for _ in range(MAX_SPANS_PER_TRACE + 5):
            with stage("loop"):
                pass
        sink = current_sink()
        tracer.reset(token)
        assert len(sink.spans) == MAX_SPANS_PER_TRACE
        assert sink.dropped == 5


class TestSpanTree:
    def _sum_self(self, node: dict) -> float:
        return node["self_ms"] + sum(
            self._sum_self(child) for child in node["children"]
        )

    def test_self_times_telescope_to_the_total(self):
        origin = time.perf_counter()
        sink = SpanSink()
        sink.spans = [
            ["keyword_mapping", 1, origin + 0.010, 0.004],
            ["candidate_probe", 2, origin + 0.011, 0.002],
            ["join_inference", 1, origin + 0.015, 0.003],
        ]
        trace = build_trace(
            "t1",
            started=origin,
            duration_s=0.025,
            children=[("parse", 0.0, 0.005), ("translate", 0.008, 0.016)],
            sink=sink,
        )
        assert self._sum_self(trace.root) == pytest.approx(25.0, abs=1e-3)

    def test_sink_rows_nest_under_the_containing_top_level_stage(self):
        origin = 100.0
        sink = SpanSink()
        sink.spans = [["keyword_mapping", 1, origin + 0.010, 0.004]]
        trace = build_trace(
            "t2",
            started=origin,
            duration_s=0.025,
            children=[("parse", 0.0, 0.005), ("translate", 0.008, 0.016)],
            sink=sink,
        )
        translate = trace.root["children"][1]
        assert translate["name"] == "translate"
        assert [c["name"] for c in translate["children"]] == ["keyword_mapping"]

    def test_format_trace_reports_the_telescoped_sum(self):
        trace = build_trace(
            "pretty",
            started=0.0,
            duration_s=0.010,
            children=[("parse", 0.0, 0.004)],
        )
        rendered = format_trace(trace)
        assert "trace pretty" in rendered
        assert "stage self-times sum to 10.000 ms of 10.000 ms total" in rendered

    def test_to_dict_is_json_shaped(self):
        trace = build_trace(
            "wire", started=0.0, duration_s=0.01, children=[]
        )
        payload = trace.to_dict()
        assert payload["trace_id"] == "wire"
        assert payload["error"] is None
        assert payload["spans"]["name"] == "request"
