"""Tests for the binder (alias resolution, join classification) and the
canonicalizer (SQL equivalence)."""

import pytest

from repro.errors import BindError
from repro.sql import bind_query, canonical_sql, parse_query, queries_equivalent


class TestBinder:
    def test_alias_resolution(self, mini_db):
        bound = bind_query(
            parse_query("SELECT p.title FROM publication p"), mini_db.catalog
        )
        assert bound.instances == {"p": "publication"}

    def test_unaliased_table_usable_by_name(self, mini_db):
        bound = bind_query(
            parse_query("SELECT publication.title FROM publication"),
            mini_db.catalog,
        )
        column = bound.resolve(parse_query(
            "SELECT publication.title FROM publication"
        ).select[0].expr)
        assert column.relation == "publication"

    def test_unqualified_column_unique(self, mini_db):
        bound = bind_query(
            parse_query("SELECT title FROM publication"), mini_db.catalog
        )
        assert bound.instances == {"publication": "publication"}

    def test_unqualified_column_ambiguous(self, mini_db):
        with pytest.raises(BindError, match="ambiguous"):
            bind_query(
                parse_query("SELECT name FROM journal, author"),
                mini_db.catalog,
            )

    def test_unknown_relation(self, mini_db):
        with pytest.raises(BindError):
            bind_query(parse_query("SELECT a FROM nope"), mini_db.catalog)

    def test_unknown_column(self, mini_db):
        with pytest.raises(BindError):
            bind_query(
                parse_query("SELECT p.nope FROM publication p"),
                mini_db.catalog,
            )

    def test_unknown_alias(self, mini_db):
        with pytest.raises(BindError):
            bind_query(
                parse_query("SELECT x.title FROM publication p"),
                mini_db.catalog,
            )

    def test_duplicate_unaliased_relation_rejected(self, mini_db):
        with pytest.raises(BindError):
            bind_query(
                parse_query("SELECT title FROM publication, publication"),
                mini_db.catalog,
            )

    def test_join_condition_classification(self, mini_db):
        bound = bind_query(
            parse_query(
                "SELECT p.title FROM publication p, journal j "
                "WHERE j.name = 'TKDE' AND p.jid = j.jid"
            ),
            mini_db.catalog,
        )
        assert len(bound.join_conditions) == 1
        assert len(bound.filter_conjuncts) == 1
        join = bound.join_conditions[0]
        assert {join.left.relation, join.right.relation} == {
            "publication", "journal",
        }

    def test_same_instance_comparison_is_filter(self, mini_db):
        bound = bind_query(
            parse_query(
                "SELECT p.title FROM publication p WHERE p.pid = p.jid"
            ),
            mini_db.catalog,
        )
        assert not bound.join_conditions
        assert len(bound.filter_conjuncts) == 1

    def test_relation_bag_with_self_join(self, mini_db):
        bound = bind_query(
            parse_query(
                "SELECT p.title FROM publication p, writes w1, writes w2 "
                "WHERE w1.pid = p.pid AND w2.pid = p.pid"
            ),
            mini_db.catalog,
        )
        assert sorted(bound.relation_bag()) == [
            "publication", "writes", "writes",
        ]

    def test_subquery_bound_separately(self, mini_db):
        bound = bind_query(
            parse_query(
                "SELECT title FROM publication WHERE year = "
                "(SELECT MAX(year) FROM publication)"
            ),
            mini_db.catalog,
        )
        assert len(bound.subqueries) == 1

    def test_correlated_subquery_rejected(self, mini_db):
        with pytest.raises(BindError):
            bind_query(
                parse_query(
                    "SELECT p.title FROM publication p WHERE p.year = "
                    "(SELECT MAX(p.year) FROM journal j)"
                ),
                mini_db.catalog,
            )


class TestCanonical:
    def test_alias_insensitive(self, mini_db):
        a = "SELECT p.title FROM publication p, journal j WHERE p.jid = j.jid AND j.name = 'TKDE'"
        b = "SELECT x.title FROM journal y, publication x WHERE y.name = 'TKDE' AND y.jid = x.jid"
        assert queries_equivalent(a, b, mini_db.catalog)

    def test_conjunct_order_insensitive(self, mini_db):
        a = "SELECT title FROM publication WHERE year > 2000 AND jid = 1"
        b = "SELECT title FROM publication WHERE jid = 1 AND year > 2000"
        assert queries_equivalent(a, b, mini_db.catalog)

    def test_comparison_orientation(self, mini_db):
        a = "SELECT title FROM publication WHERE year > 2000"
        b = "SELECT title FROM publication WHERE 2000 < year"
        assert queries_equivalent(a, b, mini_db.catalog)

    def test_join_condition_orientation(self, mini_db):
        a = "SELECT p.title FROM publication p, journal j WHERE p.jid = j.jid"
        b = "SELECT p.title FROM publication p, journal j WHERE j.jid = p.jid"
        assert queries_equivalent(a, b, mini_db.catalog)

    def test_different_predicates_not_equivalent(self, mini_db):
        a = "SELECT title FROM publication WHERE year > 2000"
        b = "SELECT title FROM publication WHERE year >= 2000"
        assert not queries_equivalent(a, b, mini_db.catalog)

    def test_different_projection_not_equivalent(self, mini_db):
        a = "SELECT title FROM publication"
        b = "SELECT year FROM publication"
        assert not queries_equivalent(a, b, mini_db.catalog)

    def test_self_join_alias_permutation(self, mini_db):
        a = (
            "SELECT p.title FROM author a1, author a2, publication p, "
            "writes w1, writes w2 "
            "WHERE a1.name = 'John Smith' AND a2.name = 'Jane Doe' "
            "AND w1.aid = a1.aid AND w2.aid = a2.aid "
            "AND w1.pid = p.pid AND w2.pid = p.pid"
        )
        # Swap which alias carries which author (and the writes pairing).
        b = (
            "SELECT p.title FROM author a1, author a2, publication p, "
            "writes w1, writes w2 "
            "WHERE a2.name = 'John Smith' AND a1.name = 'Jane Doe' "
            "AND w1.aid = a2.aid AND w2.aid = a1.aid "
            "AND w1.pid = p.pid AND w2.pid = p.pid"
        )
        assert queries_equivalent(a, b, mini_db.catalog)

    def test_self_join_value_swap_not_equivalent(self, mini_db):
        a = (
            "SELECT p.title FROM author a1, publication p, writes w1 "
            "WHERE a1.name = 'John Smith' AND w1.aid = a1.aid AND w1.pid = p.pid"
        )
        b = (
            "SELECT p.title FROM author a1, publication p, writes w1 "
            "WHERE a1.name = 'Jane Doe' AND w1.aid = a1.aid AND w1.pid = p.pid"
        )
        assert not queries_equivalent(a, b, mini_db.catalog)

    def test_float_integer_literal_normalization(self, mini_db):
        a = "SELECT title FROM publication WHERE year > 2000"
        b = "SELECT title FROM publication WHERE year > 2000.0"
        assert queries_equivalent(a, b, mini_db.catalog)

    def test_in_list_order_insensitive(self, mini_db):
        a = "SELECT name FROM journal WHERE jid IN (1, 2)"
        b = "SELECT name FROM journal WHERE jid IN (2, 1)"
        assert queries_equivalent(a, b, mini_db.catalog)

    def test_select_alias_ignored(self, mini_db):
        a = "SELECT title AS x FROM publication"
        b = "SELECT title FROM publication"
        assert queries_equivalent(a, b, mini_db.catalog)

    def test_limit_and_distinct_are_semantic(self, mini_db):
        assert not queries_equivalent(
            "SELECT title FROM publication",
            "SELECT DISTINCT title FROM publication",
            mini_db.catalog,
        )
        assert not queries_equivalent(
            "SELECT title FROM publication",
            "SELECT title FROM publication LIMIT 1",
            mini_db.catalog,
        )

    def test_order_by_order_is_semantic(self, mini_db):
        assert not queries_equivalent(
            "SELECT title FROM publication ORDER BY year",
            "SELECT title FROM publication ORDER BY year DESC",
            mini_db.catalog,
        )

    def test_unparseable_input_is_not_equivalent(self, mini_db):
        assert not queries_equivalent(
            "SELECT title FROM publication", "garbage ( SELECT", mini_db.catalog
        )

    def test_canonical_is_idempotent(self, mini_db):
        sql = (
            "SELECT p.title FROM publication p, journal j "
            "WHERE j.name = 'TKDE' AND p.jid = j.jid"
        )
        once = canonical_sql(sql, mini_db.catalog)
        twice = canonical_sql(once, mini_db.catalog)
        assert once == twice
