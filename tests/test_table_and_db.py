"""Tests for table storage and the database facade."""

import pytest

from repro.db import Catalog, Column, ColumnType, Database, TableSchema
from repro.errors import DataError, SchemaError

_INT = ColumnType.INTEGER
_TEXT = ColumnType.TEXT


class TestTable:
    def test_insert_positional(self, mini_db):
        table = mini_db.table("journal")
        row = table.insert((3, "TODS"))
        assert row == (3, "TODS")
        assert len(table) == 3

    def test_insert_mapping(self, mini_db):
        table = mini_db.table("journal")
        row = table.insert({"jid": 4, "name": "VLDBJ"})
        assert row == (4, "VLDBJ")

    def test_insert_mapping_missing_becomes_null(self, mini_db):
        row = mini_db.table("journal").insert({"jid": 5})
        assert row == (5, None)

    def test_insert_mapping_unknown_column(self, mini_db):
        with pytest.raises(DataError):
            mini_db.table("journal").insert({"nope": 1})

    def test_insert_arity_mismatch(self, mini_db):
        with pytest.raises(DataError):
            mini_db.table("journal").insert((1,))

    def test_insert_coerces_types(self, mini_db):
        row = mini_db.table("journal").insert(("7", 123))
        assert row == (7, "123")

    def test_column_values_and_distinct(self, mini_db):
        values = mini_db.table("publication").column_values("jid")
        assert values == [1, 2, 1, 1]
        assert mini_db.table("publication").distinct_values("jid") == [1, 2]

    def test_distinct_skips_nulls(self, mini_db):
        mini_db.table("journal").insert((9, None))
        assert None not in mini_db.table("journal").distinct_values("name")

    def test_any_value_satisfies(self, mini_db):
        table = mini_db.table("publication")
        assert table.any_value_satisfies("year", ">", 2005)
        assert not table.any_value_satisfies("year", ">", 2015)

    def test_count_satisfying(self, mini_db):
        assert mini_db.table("publication").count_satisfying("year", ">", 2000) == 3

    def test_value_range(self, mini_db):
        assert mini_db.table("publication").value_range("year") == (1999, 2010)

    def test_value_range_empty(self):
        db = Database("t", Catalog())
        db.create_table(TableSchema("x", [Column("a", _INT)]))
        assert db.table("x").value_range("a") is None


class TestDatabase:
    def test_relations_listing(self, mini_db):
        assert set(mini_db.relations) == {
            "publication", "journal", "author", "writes",
        }

    def test_unknown_table(self, mini_db):
        with pytest.raises(SchemaError):
            mini_db.table("nope")

    def test_predicate_nonempty(self, mini_db):
        assert mini_db.predicate_nonempty("publication", "year", ">", 2000)
        assert not mini_db.predicate_nonempty("publication", "year", "<", 1990)

    def test_row_counts(self, mini_db):
        assert mini_db.row_count("publication") == 4
        assert mini_db.total_rows() == 4 + 2 + 2 + 4

    def test_fulltext_rebuilt_after_insert(self, mini_db):
        assert not mini_db.fulltext.search_column("journal", "name", ["tods"])
        mini_db.insert("journal", (3, "TODS"))
        assert mini_db.fulltext.search_column("journal", "name", ["tods"]) == [
            "TODS"
        ]

    def test_insert_many_returns_count(self, mini_db):
        count = mini_db.insert_many("journal", [(10, "A"), (11, "B")])
        assert count == 2

    def test_repr_mentions_size(self, mini_db):
        text = repr(mini_db)
        assert "mini" in text and "tables" in text
