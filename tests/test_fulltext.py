"""Tests for the Porter-stemmed full-text index."""

from repro.db.fulltext import FullTextIndex, tokenize_text


class TestTokenize:
    def test_basic_tokens(self):
        assert tokenize_text("Scalable Query-Processing!") == [
            "scalable", "query", "processing",
        ]

    def test_numbers_kept(self):
        assert tokenize_text("Part 2") == ["part", "2"]

    def test_empty(self):
        assert tokenize_text("--- !!") == []


def make_index() -> FullTextIndex:
    index = FullTextIndex()
    for value in [
        "Scalable Query Processing",
        "Query Optimization Revisited",
        "Mobile Network Survey",
    ]:
        index.add_value("publication", "title", value)
    index.add_value("journal", "name", "TKDE")
    return index


class TestSearch:
    def test_single_token_stemmed(self):
        index = make_index()
        # 'queries' stems to 'queri', prefix of... exact stem 'queri' matches
        # the stem of 'query'.
        hits = index.search_column("publication", "title", ["query"])
        assert hits == [
            "Query Optimization Revisited",
            "Scalable Query Processing",
        ]

    def test_all_tokens_must_match(self):
        index = make_index()
        hits = index.search_column(
            "publication", "title", ["query", "processing"]
        )
        assert hits == ["Scalable Query Processing"]

    def test_prefix_semantics(self):
        index = make_index()
        # 'optim' is a prefix of the stem of 'optimization'.
        hits = index.search_column("publication", "title", ["optim"])
        assert hits == ["Query Optimization Revisited"]

    def test_morphological_match_through_stemming(self):
        index = make_index()
        hits = index.search_column("publication", "title", ["networks"])
        assert hits == ["Mobile Network Survey"]

    def test_no_match(self):
        index = make_index()
        assert index.search_column("publication", "title", ["zebra"]) == []

    def test_empty_token_list_matches_nothing(self):
        index = make_index()
        assert index.search_column("publication", "title", []) == []

    def test_unknown_column(self):
        index = make_index()
        assert index.search_column("publication", "abstract", ["query"]) == []

    def test_cross_column_search(self):
        index = make_index()
        hits = index.search(["tkde"])
        assert len(hits) == 1
        assert hits[0].table == "journal"
        assert hits[0].value == "TKDE"
        assert hits[0].ref == "journal.name"

    def test_search_is_deterministic_sorted(self):
        index = make_index()
        first = index.search_column("publication", "title", ["query"])
        second = index.search_column("publication", "title", ["query"])
        assert first == second == sorted(first)

    def test_vocabulary_size(self):
        index = make_index()
        assert index.vocabulary_size("journal", "name") == 1
        assert index.vocabulary_size("publication", "title") > 3

    def test_case_insensitive(self):
        index = make_index()
        assert index.search_column("journal", "name", ["TKDE"]) == ["TKDE"]

    def test_incremental_add_invalidates_cache(self):
        index = make_index()
        assert index.search_column("journal", "name", ["tods"]) == []
        index.add_value("journal", "name", "TODS")
        assert index.search_column("journal", "name", ["tods"]) == ["TODS"]
