"""Property-based round-trips for the messy-log reader.

Hypothesis generates statements (with string literals that contain the
reader's own control characters: ``;``, ``--``, quotes), renders them
through an adversarial pretty-printer — random line breaks, indentation,
inline and full-line comments, blank-line separators, optional ``;``
terminators — and asserts :func:`repro.ingest.reader.iter_statements`
(and the :meth:`QueryLog.from_file` path on top of it) recovers exactly
the original statements: none split, none merged, literals untouched.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.log import QueryLog
from repro.ingest.reader import (
    STATEMENT_STARTERS, iter_statements, normalize_statement,
)

# Identifiers must not collide with statement-starter keywords: a line
# break *before* such a token would (correctly!) split the statement.
_identifier = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in STATEMENT_STARTERS
)

# Literal bodies exercise quote-awareness: embedded ';', '--', spaces,
# and escaped quotes ('' in SQL).  No newlines (the reader folds those
# to spaces, deliberately changing the byte content).
_literal_body = st.text(
    alphabet="ab;- '_x0", min_size=0, max_size=12
).map(lambda s: s.replace("'", "''"))


@st.composite
def _statement_tokens(draw):
    """One statement as a token list; literals are atomic tokens."""
    table = draw(_identifier)
    column = draw(_identifier)
    tokens = ["SELECT", column, "FROM", table]
    if draw(st.booleans()):
        value = draw(_literal_body)
        tokens += ["WHERE", draw(_identifier), "=", f"'{value}'"]
    if draw(st.booleans()):
        values = [f"'{draw(_literal_body)}'" for _ in range(2)]
        tokens += ["AND", draw(_identifier), "IN", f"({', '.join(values)})"]
    return tokens


@st.composite
def _messy_log(draw):
    """(raw lines, canonical statements) with adversarial formatting."""
    statements = draw(
        st.lists(_statement_tokens(), min_size=1, max_size=5)
    )
    lines: list[str] = []
    rng = draw(st.randoms(use_true_random=False))

    def emit_noise() -> None:
        roll = rng.random()
        if roll < 0.25:
            lines.append("")
        elif roll < 0.5:
            lines.append(f"-- {rng.choice(['noise', 'audit; drop', '-- x'])}")

    emit_noise()
    for tokens in statements:
        current = ""
        for token in tokens:
            if current and rng.random() < 0.3:
                # Break the line here; sometimes leave a comment behind.
                if rng.random() < 0.3:
                    current += " -- trailing comment"
                lines.append(current)
                current = "  " * rng.randrange(3)  # indentation noise
            current += (" " * rng.randrange(1, 3) if current.strip() else "") \
                + token
        if rng.random() < 0.5:
            current += " ;" if rng.random() < 0.3 else ";"
            lines.append(current)
        else:
            lines.append(current)
            # Without a terminator the next statement's SELECT (or a
            # blank line / EOF) must close this one implicitly.
        emit_noise()
    canonical = [" ".join(tokens) for tokens in statements]
    return lines, canonical


@settings(max_examples=120, deadline=None)
@given(_messy_log())
def test_reader_neither_splits_nor_merges(log):
    lines, canonical = log
    assert list(iter_statements(lines)) == canonical


@settings(max_examples=60, deadline=None)
@given(_messy_log())
def test_query_log_from_file_round_trips(log):
    lines, canonical = log
    with tempfile.TemporaryDirectory(prefix="repro-ingest-") as tmp:
        path = Path(tmp) / "messy.sql"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert list(QueryLog.from_file(path)) == canonical


@settings(max_examples=80, deadline=None)
@given(_statement_tokens())
def test_normalize_statement_is_idempotent(tokens):
    canonical = " ".join(tokens)
    once = normalize_statement(canonical)
    assert once == canonical
    assert normalize_statement(once) == once
