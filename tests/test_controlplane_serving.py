"""Control plane wired through engines, the gateway, and the HTTP servers.

The replica-shaped correctness battery: a request warmed by engine A
hits durably on engine B; an idempotent retry contributes exactly zero
extra QFG observations (even when two replicas race on the same key); a
crash between response-write and feedback-apply loses nothing; and an
accepted verdict measurably changes a subsequent translation's QFG
score.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.api import Engine, EngineConfig
from repro.errors import ConfigError, IdempotencyError
from repro.gateway import Gateway, GatewayConfig, make_gateway_server
from repro.serving import make_server

NLQ = "return the papers after 2000"


def _config(tmp_path, **extra) -> EngineConfig:
    return EngineConfig(
        dataset="mas",
        control_plane_path=str(tmp_path / "cp.db"),
        **extra,
    )


def _post(port, path, payload, headers=None):
    data = json.dumps(payload).encode()
    merged = {"Content-Type": "application/json"}
    merged.update(headers or {})
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, headers=merged
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
        content_type = response.headers.get("Content-Type", "")
        body = response.read()
        if "json" in content_type:
            return response.status, json.loads(body)
        return response.status, body.decode()


class TestDurableCache:
    def test_warm_entry_hits_on_second_replica(self, tmp_path):
        """Replica A computes; replica B on the same store serves it warm."""
        with Engine.from_config(_config(tmp_path)) as a:
            first = a.translate(NLQ)
            assert first.provenance.get("control_plane") is None
            a.control_plane.flush()
        with Engine.from_config(_config(tmp_path)) as b:
            warm = b.translate(NLQ)
            assert warm.provenance["control_plane"] == "durable"
            assert warm.top.sql == first.top.sql
            assert warm.top.config_score == pytest.approx(
                first.top.config_score
            )
            assert b.service.metrics.counter("durable_cache_hits") == 1

    def test_durable_entry_survives_restart(self, tmp_path):
        with Engine.from_config(_config(tmp_path)) as a:
            a.translate(NLQ)
            a.control_plane.flush()
        # Same process-independent file, third construction.
        with Engine.from_config(_config(tmp_path)) as c:
            assert c.translate(NLQ).provenance["control_plane"] == "durable"

    def test_learning_invalidates_the_fingerprint(self, tmp_path):
        """An absorbed observation moves the replica to a fresh key space."""
        with Engine.from_config(_config(tmp_path)) as a:
            a.translate(NLQ)
            a.control_plane.flush()
            a.observe("SELECT t1.title FROM publication t1")
            a.absorb_pending()
            recomputed = a.translate(NLQ)
            assert recomputed.provenance.get("control_plane") is None

    def test_cache_disabled_always_computes(self, tmp_path):
        config = _config(tmp_path, control_plane_cache=False)
        with Engine.from_config(config) as a:
            a.translate(NLQ)
            a.control_plane.flush()
            assert a.translate(NLQ).provenance.get("control_plane") is None
            assert a.service.metrics.counter("durable_cache_misses") == 0

    def test_explain_recomputes_after_durable_hit(self, tmp_path):
        with Engine.from_config(_config(tmp_path)) as a:
            a.translate(NLQ)
            a.control_plane.flush()
        with Engine.from_config(_config(tmp_path)) as b:
            assert b.translate(NLQ).provenance["control_plane"] == "durable"
            explanation = b.explain(NLQ)
            assert explanation.render()


class TestIdempotency:
    def test_retry_replays_and_learns_nothing(self, tmp_path):
        """The acceptance gate: a retried observe adds zero observations."""
        with Engine.from_config(_config(tmp_path)) as a:
            first = a.translate(NLQ, observe=True, idempotency_key="k1")
            assert first.learnable
            pending_after_first = a.service.pending_observations
            retry = a.translate(NLQ, observe=True, idempotency_key="k1")
            assert retry.provenance["idempotent_replay"] is True
            assert retry.provenance["control_plane"] == "replay"
            assert not retry.learnable
            assert retry.top.sql == first.top.sql
            assert a.service.pending_observations == pending_after_first
            assert a.service.metrics.counter("idempotent_replays") == 1

    def test_retry_on_second_replica_learns_nothing(self, tmp_path):
        with Engine.from_config(_config(tmp_path)) as a:
            a.translate(NLQ, observe=True, idempotency_key="k1")
            pending_a = a.service.pending_observations
            a.control_plane.flush()
            with Engine.from_config(_config(tmp_path)) as b:
                retry = b.translate(NLQ, observe=True, idempotency_key="k1")
                assert retry.provenance["idempotent_replay"] is True
                assert b.service.pending_observations == 0
            assert a.service.pending_observations == pending_a == 1

    def test_key_reuse_with_different_body_conflicts(self, tmp_path):
        with Engine.from_config(_config(tmp_path)) as a:
            a.translate(NLQ, idempotency_key="k1")
            with pytest.raises(IdempotencyError, match="different request"):
                a.translate("return the authors", idempotency_key="k1")
            assert a.service.metrics.counter("idempotency_conflicts") == 1

    def test_same_key_race_observes_exactly_once(self, tmp_path):
        """Two replicas receive the same key simultaneously: one winner."""
        a = Engine.from_config(_config(tmp_path))
        b = Engine.from_config(_config(tmp_path))
        barrier = threading.Barrier(2)
        responses = {}

        def serve(name, engine):
            barrier.wait()
            responses[name] = engine.translate(
                NLQ, observe=True, idempotency_key="raced"
            )

        try:
            threads = [
                threading.Thread(target=serve, args=("a", a)),
                threading.Thread(target=serve, args=("b", b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            total_pending = (
                a.service.pending_observations + b.service.pending_observations
            )
            assert total_pending == 1
            assert responses["a"].top.sql == responses["b"].top.sql
            learnable = [
                response for response in responses.values()
                if response.learnable
            ]
            assert len(learnable) == 1
        finally:
            a.close()
            b.close()

    def test_auto_key_dedupes_observe_retries_without_header(self, tmp_path):
        """The request-hash fallback: at-least-once clients with no header."""
        with Engine.from_config(_config(tmp_path)) as a:
            a.translate(NLQ, observe=True)
            assert a.service.pending_observations == 1
            retry = a.translate(NLQ, observe=True)
            assert not retry.learnable
            assert a.service.pending_observations == 1


class TestFeedback:
    def test_accept_changes_the_next_translation_score(self, tmp_path):
        """The acceptance gate: an accepted pair moves the QFG's scores."""
        with Engine.from_config(_config(tmp_path)) as a:
            before = a.translate(NLQ)
            request_id = before.provenance["request_id"]
            baseline_queries = a.stats()["qfg"]["total_queries"]
            a.control_plane.submit_feedback(
                "mas", "accept", request_id=request_id
            )
            assert a.apply_feedback() == 1
            assert a.stats()["qfg"]["total_queries"] == baseline_queries + 1
            after = a.translate(NLQ)
            assert after.provenance.get("control_plane") is None
            assert after.top.config_score > before.top.config_score

    def test_corrected_sql_is_what_gets_learned(self, tmp_path):
        corrected = "SELECT t1.title FROM publication t1"
        with Engine.from_config(_config(tmp_path)) as a:
            response = a.translate(NLQ)
            baseline = a.stats()["qfg"]["total_queries"]
            a.control_plane.submit_feedback(
                "mas",
                "correct",
                request_id=response.provenance["request_id"],
                corrected_sql=corrected,
            )
            assert a.apply_feedback() == 1
            assert a.stats()["qfg"]["total_queries"] == baseline + 1

    def test_reject_is_recorded_but_never_learned(self, tmp_path):
        with Engine.from_config(_config(tmp_path)) as a:
            response = a.translate(NLQ)
            baseline = a.stats()["qfg"]["total_queries"]
            a.control_plane.submit_feedback(
                "mas", "reject",
                request_id=response.provenance["request_id"],
            )
            assert a.apply_feedback() == 0
            assert a.stats()["qfg"]["total_queries"] == baseline
            rows = a.control_plane.feedback_after("mas", 0)
            assert [row["verdict"] for row in rows] == ["reject"]

    def test_crash_before_apply_survives_restart(self, tmp_path):
        """Verdict persisted, process dies before applying: nothing lost."""
        with Engine.from_config(_config(tmp_path)) as a:
            response = a.translate(NLQ)
            a.control_plane.submit_feedback(
                "mas", "accept",
                request_id=response.provenance["request_id"],
            )
            baseline = a.stats()["qfg"]["total_queries"]
            # Crash: the engine goes away without ever calling
            # apply_feedback.  (close() flushes observations, not
            # feedback — feedback lives durably in the store.)
        with Engine.from_config(_config(tmp_path)) as b:
            # from_config applies the durable feedback backlog at startup.
            assert b.stats()["qfg"]["total_queries"] == baseline + 1

    def test_two_replicas_converge_on_shared_feedback(self, tmp_path):
        """Both replicas apply the same verdicts: same QFG, same cache keys."""
        a = Engine.from_config(_config(tmp_path))
        b = Engine.from_config(_config(tmp_path))
        try:
            response = a.translate(NLQ)
            a.control_plane.submit_feedback(
                "mas", "accept",
                request_id=response.provenance["request_id"],
            )
            assert a.apply_feedback() == 1
            assert b.apply_feedback() == 1
            assert (
                a.stats()["qfg"]["total_queries"]
                == b.stats()["qfg"]["total_queries"]
            )
            # Convergence in the strong sense: identical artifact
            # fingerprints, so they share durable cache entries again.
            fp_a = a.control_plane.artifact_fingerprint(
                a.service, a.translate(NLQ).provenance
            )
            fp_b = b.control_plane.artifact_fingerprint(
                b.service, b.translate(NLQ).provenance
            )
            assert fp_a == fp_b
        finally:
            a.close()
            b.close()


class TestConfig:
    def test_engine_config_round_trip(self):
        config = EngineConfig(
            control_plane_path="cp.db",
            control_plane_cache=False,
            idempotency_ttl_seconds=60.0,
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_bad_ttl_rejected(self):
        with pytest.raises(ConfigError, match="idempotency_ttl_seconds"):
            EngineConfig(idempotency_ttl_seconds=0)

    def test_gateway_round_trip(self):
        config = GatewayConfig.from_dict({
            "tenants": {"mas": {"engine": {"dataset": "mas"}}},
            "control_plane_path": "cp.db",
            "control_plane_feedback": False,
            "idempotency_ttl_seconds": 120.0,
        })
        assert GatewayConfig.from_dict(config.to_dict()) == config

    def test_gateway_and_tenant_paths_clash(self):
        with pytest.raises(ConfigError, match="already shares"):
            GatewayConfig.from_dict({
                "tenants": {
                    "mas": {
                        "engine": {
                            "dataset": "mas",
                            "control_plane_path": "tenant.db",
                        }
                    }
                },
                "control_plane_path": "shared.db",
            })

    def test_injected_plane_cannot_override_config_path(self, tmp_path):
        from repro.controlplane import ControlPlane

        plane = ControlPlane(tmp_path / "other.db")
        try:
            with pytest.raises(ConfigError, match="injected control plane"):
                Engine.from_config(_config(tmp_path), control_plane=plane)
        finally:
            plane.close()


class TestObservability:
    def test_journal_shed_counter_surfaced_in_stats(self, tmp_path):
        config = _config(tmp_path, journal_dir=str(tmp_path / "journal"))
        with Engine.from_config(config) as a:
            a.translate(NLQ)
            a.service.journal.dropped = 7  # simulate shed under pressure
            stats = a.stats()
            assert stats["journal"]["dropped"] == 7
            counters = stats["metrics"]["counters"]
            assert counters["journal_dropped_records"] == 7
            assert counters["control_plane_dropped_writes"] == 0

    def test_stats_include_control_plane_block(self, tmp_path):
        with Engine.from_config(_config(tmp_path)) as a:
            a.translate(NLQ)
            block = a.stats()["control_plane"]
            assert block["cache"] is True
            assert block["dropped_writes"] == 0


class TestSingleEngineHTTP:
    @pytest.fixture()
    def server_port(self, tmp_path):
        engine = Engine.from_config(
            _config(tmp_path, journal_dir=str(tmp_path / "journal"))
        )
        server = make_server(engine=engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server.server_address[1]
        finally:
            server.shutdown()
            engine.close()

    def test_feedback_endpoint_round_trip(self, server_port):
        status, body = _post(server_port, "/translate", {"nlq": NLQ})
        assert status == 200
        request_id = body["provenance"]["request_id"]
        status, record = _post(
            server_port, "/feedback",
            {"verdict": "accept", "request_id": request_id},
        )
        assert status == 200
        assert record["verdict"] == "accept"
        assert record["applied"] == 1
        status, text = _get(server_port, "/metrics")
        assert 'repro_feedback_total{verdict="accept"}' in text
        assert "repro_journal_written_records_total" in text
        assert "repro_control_plane_dropped_writes_total" in text

    def test_idempotency_key_header_and_409(self, server_port):
        headers = {"Idempotency-Key": "http-k"}
        _post(server_port, "/translate", {"nlq": NLQ}, headers)
        status, body = _post(server_port, "/translate", {"nlq": NLQ}, headers)
        assert status == 200
        assert body["provenance"]["idempotent_replay"] is True
        status, body = _post(
            server_port, "/translate", {"nlq": "return the authors"}, headers
        )
        assert status == 409
        assert "Idempotency-Key" in body["error"]

    def test_feedback_validation_is_400(self, server_port):
        status, body = _post(
            server_port, "/feedback", {"verdict": "maybe", "sql": "x"}
        )
        assert status == 400

    def test_feedback_without_plane_is_400(self, tmp_path):
        engine = Engine.from_config(EngineConfig(dataset="mas"))
        server = make_server(engine=engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _post(
                server.server_address[1], "/feedback",
                {"verdict": "reject", "sql": "x"},
            )
            assert status == 400
            assert "control plane" in body["error"]
        finally:
            server.shutdown()
            engine.close()


class TestGatewayHTTP:
    @pytest.fixture()
    def gateway_port(self, tmp_path):
        config = GatewayConfig.from_dict({
            "tenants": {"mas": {"engine": {"dataset": "mas"}}},
            "journal_dir": str(tmp_path / "journal"),
            "control_plane_path": str(tmp_path / "cp.db"),
            "learn_interval_seconds": 3600.0,
        })
        gateway = Gateway.from_config(config)
        server = make_gateway_server(gateway, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        gateway.start()
        try:
            yield gateway, server.server_address[1]
        finally:
            server.shutdown()
            gateway.close()

    def test_feedback_route_applies_inline(self, gateway_port):
        gateway, port = gateway_port
        status, body = _post(port, "/t/mas/translate", {"nlq": NLQ})
        assert status == 200
        request_id = body["provenance"]["request_id"]
        status, record = _post(
            port, "/t/mas/feedback",
            {"verdict": "accept", "request_id": request_id},
        )
        assert status == 200
        assert record["applied"] == 1
        # Durable + journaled: the self-analytics layer can count it.
        gateway.journal.flush()
        status, answer = _get(
            port,
            "/admin/logs/query?nlq="
            + urllib.parse.quote("number of accepted feedback"),
        )
        assert status == 200
        assert "feedback" in answer["sql"]

    def test_feedback_unknown_tenant_404(self, gateway_port):
        _, port = gateway_port
        status, _ = _post(
            port, "/t/nope/feedback", {"verdict": "reject", "sql": "x"}
        )
        assert status == 404

    def test_feedback_get_is_404(self, gateway_port):
        _, port = gateway_port
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/t/mas/feedback"
            )
        assert excinfo.value.code == 404

    def test_gateway_stats_surface_shared_writers(self, gateway_port):
        gateway, port = gateway_port
        _post(port, "/t/mas/translate", {"nlq": NLQ})
        status, stats = _get(port, "/stats")
        assert stats["journal"] is not None
        assert stats["control_plane"]["pending_writes"] >= 0
        counters = stats["metrics"]["counters"]
        assert "journal_dropped_records" in counters
        assert "control_plane_dropped_writes" in counters

    def test_idempotency_header_through_gateway(self, gateway_port):
        _, port = gateway_port
        headers = {"Idempotency-Key": "gw-k"}
        _post(port, "/t/mas/translate", {"nlq": NLQ}, headers)
        status, body = _post(port, "/t/mas/translate", {"nlq": NLQ}, headers)
        assert status == 200
        assert body["provenance"]["idempotent_replay"] is True
        status, _ = _post(
            port, "/t/mas/translate", {"nlq": "return the authors"}, headers
        )
        assert status == 409


class TestSelfQueryFeedback:
    def test_feedback_records_land_in_telemetry_schema(self):
        from repro.obs.selfquery import load_telemetry_database

        database = load_telemetry_database([
            {"kind": "request", "ts": 10.0, "tenant": "mas", "nlq": "q",
             "sql": "SELECT 1", "latency_ms": 5.0},
            {"kind": "feedback", "ts": 11.0, "tenant": "mas",
             "verdict": "reject", "nlq": "q", "sql": "SELECT 1"},
            {"kind": "feedback", "ts": 12.0, "tenant": "mas",
             "verdict": "accept", "nlq": "q", "sql": "SELECT 1"},
        ])
        result = database.execute(
            "SELECT COUNT(t1.fid) FROM feedback t1 "
            "WHERE t1.verdict = 'reject'"
        )
        assert result.rows[0][0] == 1

    def test_normalize_rewrites_verdict_vocabulary(self):
        from repro.obs.selfquery import normalize_nlq

        assert "'reject'" in normalize_nlq("rejected feedback")
        assert "'accept'" in normalize_nlq("how many accepts")


class TestCLI:
    def test_feedback_and_controlplane_commands(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "cp.db")
        assert main([
            "feedback", "--store", store, "--verdict", "correct",
            "--nlq", "papers by X",
            "--corrected-sql", "SELECT t1.title FROM publication t1",
        ]) == 0
        assert "correct" in capsys.readouterr().out
        assert main(["controlplane", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "feedback[correct]" in out
        assert main(["controlplane", "prune", "--store", store]) == 0
        capsys.readouterr()

    def test_feedback_bad_verdict_is_cli_error(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "feedback", "--store", str(tmp_path / "cp.db"),
                "--verdict", "maybe", "--sql", "x",
            ])
        capsys.readouterr()
