"""Tests for the SQL pretty-printer and NaLIR parse coverage."""

import pytest

from repro.nlidb import NalirParser
from repro.sql import parse_query
from repro.sql.formatter import format_query


class TestFormatter:
    def test_clause_per_line(self, mini_db):
        sql = (
            "SELECT p.title FROM publication p, journal j "
            "WHERE j.name = 'TKDE' AND p.jid = j.jid "
            "ORDER BY p.year DESC LIMIT 3"
        )
        formatted = format_query(sql)
        lines = formatted.splitlines()
        assert lines[0].startswith("SELECT ")
        assert lines[1].startswith("FROM ")
        assert lines[2].startswith("WHERE ")
        assert lines[3].strip().startswith("AND ")
        assert lines[-1] == "LIMIT 3"

    def test_formatted_sql_reparses_to_same_ast(self, mini_db):
        sql = (
            "SELECT j.name, COUNT(p.pid) FROM publication p, journal j "
            "WHERE p.jid = j.jid AND p.year > 2000 "
            "GROUP BY j.name HAVING COUNT(p.pid) > 1"
        )
        original = parse_query(sql)
        formatted = format_query(original)
        assert parse_query(formatted.replace("\n", " ")) == original

    def test_distinct_rendering(self):
        formatted = format_query("SELECT DISTINCT a FROM t")
        assert formatted.startswith("SELECT DISTINCT")

    def test_accepts_ast_or_text(self):
        query = parse_query("SELECT a FROM t")
        assert format_query(query) == format_query("SELECT a FROM t")


class TestNalirParseCoverage:
    """The rule-based NaLIR front-end must parse the bulk of each
    benchmark's NLQ surface forms (its *mapping* may still be wrong —
    this measures the parser alone)."""

    @pytest.mark.parametrize("name", ["mas", "yelp", "imdb"])
    def test_parse_success_rate(
        self, name, mas_dataset, yelp_dataset, imdb_dataset
    ):
        dataset = {
            "mas": mas_dataset, "yelp": yelp_dataset, "imdb": imdb_dataset
        }[name]
        parser = NalirParser(dataset.database, dataset.schema_terms)
        parsed = sum(
            not parser.parse(item.nlq).failed
            for item in dataset.usable_items()
        )
        rate = parsed / len(dataset.usable_items())
        assert rate > 0.9, f"{name}: parse rate {rate:.2f}"

    def test_every_parse_emits_reasonable_keywords(self, mas_dataset):
        parser = NalirParser(mas_dataset.database, mas_dataset.schema_terms)
        for item in mas_dataset.usable_items():
            result = parser.parse(item.nlq)
            if result.failed:
                continue
            assert 1 <= len(result.keywords) <= 5, item.item_id
            for keyword in result.keywords:
                assert keyword.text.strip(), item.item_id

    def test_failure_notes_concentrate_in_designed_families(self, mas_dataset):
        parser = NalirParser(mas_dataset.database, mas_dataset.schema_terms)
        failing_kinds = ("mis-attached", "lost aggregate")
        noted = {
            item.family
            for item in mas_dataset.usable_items()
            if any(
                note.startswith(failing_kinds)
                for note in parser.parse(item.nlq).notes
            )
        }
        # Genuine failure notes (not the informational "ignored secondary
        # term") concentrate in the families designed around NaLIR's
        # documented failure modes.
        assert len(noted) <= 12
        assert "authors_with_min_papers" in noted  # failure (b)
        assert "count_papers_of_author" in noted  # failure (c)
