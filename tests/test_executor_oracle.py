"""Property tests: the SELECT executor against a brute-force oracle.

The oracle evaluates simple filter/join queries by materializing the full
cross product in plain Python; the executor must agree on randomly
generated predicates and join shapes.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.types import compare_values
from tests.conftest import build_mini_db

OPS = ["=", "!=", "<", "<=", ">", ">="]


class TestFilterOracle:
    @given(
        st.sampled_from(["pid", "year", "jid"]),
        st.sampled_from(OPS),
        st.integers(-5, 2020),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_table_filter(self, column, op, literal):
        db = build_mini_db()
        result = db.execute(
            f"SELECT title FROM publication WHERE {column} {op} {literal}"
        )
        table = db.table("publication")
        index = table.schema.column_index(column)
        title_index = table.schema.column_index("title")
        expected = [
            row[title_index]
            for row in table.rows
            if compare_values(row[index], literal, op)
        ]
        assert result.column() == expected

    @given(
        st.sampled_from(OPS),
        st.integers(1995, 2012),
        st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_conjunction(self, op, year, jid):
        db = build_mini_db()
        result = db.execute(
            f"SELECT pid FROM publication WHERE year {op} {year} "
            f"AND jid = {jid}"
        )
        table = db.table("publication")
        expected = [
            row[0]
            for row in table.rows
            if compare_values(row[2], year, op)
            and compare_values(row[3], jid, "=")
        ]
        assert result.column() == expected


class TestJoinOracle:
    @given(st.sampled_from(OPS), st.integers(1995, 2012))
    @settings(max_examples=40, deadline=None)
    def test_two_table_join(self, op, year):
        db = build_mini_db()
        result = db.execute(
            "SELECT p.pid, j.name FROM publication p, journal j "
            f"WHERE p.jid = j.jid AND p.year {op} {year}"
        )
        publications = db.table("publication").rows
        journals = db.table("journal").rows
        expected = sorted(
            (p[0], j[1])
            for p, j in itertools.product(publications, journals)
            if p[3] is not None
            and p[3] == j[0]
            and compare_values(p[2], year, op)
        )
        assert sorted(result.rows) == expected

    @given(st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_count_matches_row_enumeration(self, jid):
        db = build_mini_db()
        count = db.execute(
            f"SELECT COUNT(*) FROM publication WHERE jid = {jid}"
        ).scalar()
        expected = sum(
            1 for row in db.table("publication").rows if row[3] == jid
        )
        assert count == expected


class TestAggregateOracle:
    @given(st.sampled_from(["MIN", "MAX", "SUM"]))
    @settings(max_examples=20, deadline=None)
    def test_aggregate_against_python(self, func):
        db = build_mini_db()
        value = db.execute(f"SELECT {func}(year) FROM publication").scalar()
        years = [
            row[2] for row in db.table("publication").rows if row[2] is not None
        ]
        expected = {"MIN": min, "MAX": max, "SUM": sum}[func](years)
        assert value == expected

    @given(st.integers(1, 2))
    @settings(max_examples=10, deadline=None)
    def test_group_by_against_python(self, minimum):
        db = build_mini_db()
        result = db.execute(
            "SELECT jid, COUNT(pid) FROM publication GROUP BY jid "
            f"HAVING COUNT(pid) >= {minimum}"
        )
        from collections import Counter

        counts = Counter(
            row[3] for row in db.table("publication").rows
        )
        expected = {
            jid: count for jid, count in counts.items() if count >= minimum
        }
        assert dict(result.rows) == expected
