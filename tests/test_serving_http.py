"""HTTP endpoint and wire-format tests (stdlib client against a live server)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import Keyword, KeywordMetadata, Templar
from repro.core.fragments import FragmentContext
from repro.errors import ServingError
from repro.nlidb import NalirParser, PipelineNLIDB
from repro.serving import TranslationService, make_server
from repro.serving.wire import keyword_from_dict, keyword_to_dict


class TestWireFormat:
    def test_keyword_round_trip(self):
        keyword = Keyword(
            "after 2000",
            KeywordMetadata(
                FragmentContext.WHERE,
                comparison_op=">",
                aggregates=("COUNT",),
                grouped=True,
                distinct=True,
                descending=True,
                limit=5,
            ),
        )
        assert keyword_from_dict(keyword_to_dict(keyword)) == keyword

    def test_minimal_keyword_defaults_to_where(self):
        keyword = keyword_from_dict({"text": "TKDE"})
        assert keyword.metadata.context is FragmentContext.WHERE
        assert keyword.metadata.comparison_op is None

    def test_unknown_context_rejected_with_choices(self):
        with pytest.raises(ServingError, match="SELECT"):
            keyword_from_dict({"text": "x", "context": "FETCH"})

    def test_missing_text_rejected(self):
        with pytest.raises(ServingError):
            keyword_from_dict({"context": "WHERE"})

    def test_float_and_bool_keyword_limits_rejected(self):
        for bad in (2.9, True, 0, -1):
            with pytest.raises(ServingError, match="positive integer"):
                keyword_from_dict({"text": "top movies", "limit": bad})

    def test_string_booleans_rejected_for_flags(self):
        for flag in ("grouped", "distinct", "descending"):
            with pytest.raises(ServingError, match="boolean"):
                keyword_from_dict({"text": "papers", flag: "false"})


@pytest.fixture()
def server(mini_db, mini_model, mini_log):
    templar = Templar(mini_db, mini_model, mini_log)
    nlidb = PipelineNLIDB(mini_db, mini_model, templar)
    # learn_batch_size above the test traffic volume: 'observe' is
    # accepted and queues without auto-draining mid-test.
    service = TranslationService(nlidb, max_workers=2, learn_batch_size=64)
    parser = NalirParser(mini_db, ["papers", "journals", "authors"],
                         simulate_failures=False)
    http_server = make_server(service, port=0, parser=parser)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        service.close()


def _get(server, path: str):
    port = server.server_address[1]
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
        return response.status, json.loads(response.read())


def _post(server, path: str, payload: dict):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


KEYWORD_PAYLOAD = {
    "keywords": [
        {"text": "papers", "context": "SELECT"},
        {"text": "after 2000", "context": "WHERE", "comparison_op": ">"},
    ]
}


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["system"] == "Pipeline+"

    def test_translate_keywords(self, server):
        status, body = _post(server, "/translate", KEYWORD_PAYLOAD)
        assert status == 200
        assert body["count"] >= 1
        top = body["results"][0]
        assert "publication" in top["sql"]
        assert "year > 2000" in top["sql"]

    def test_translate_limit(self, server):
        payload = dict(KEYWORD_PAYLOAD, limit=1)
        status, body = _post(server, "/translate", payload)
        assert status == 200
        assert len(body["results"]) == 1
        assert body["count"] >= 1

    def test_translate_nlq(self, server):
        status, body = _post(
            server, "/translate", {"nlq": "return the papers after 2000"}
        )
        assert status == 200
        assert body["count"] >= 1

    def test_stats_and_metrics_reflect_traffic(self, server):
        _post(server, "/translate", KEYWORD_PAYLOAD)
        _post(server, "/translate", KEYWORD_PAYLOAD)
        status, stats = _get(server, "/stats")
        assert status == 200
        assert stats["metrics"]["counters"]["requests"] >= 2
        translate_cache = next(
            c for c in stats["caches"] if c["name"] == "translate"
        )
        assert translate_cache["hits"] >= 1

        status, metrics = _get(server, "/metrics?format=json")
        assert status == 200
        assert metrics["latencies"]["translate"]["count"] >= 2

    def test_observe_flag_queues_learning(self, server):
        payload = dict(KEYWORD_PAYLOAD, observe=True)
        status, _ = _post(server, "/translate", payload)
        assert status == 200
        assert server.service.pending_observations == 1

    def test_unsupported_content_type_is_400(self, server):
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/translate",
            data=json.dumps(KEYWORD_PAYLOAD).encode("utf-8"),
            headers={"Content-Type": "text/plain"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request)
        assert exc_info.value.code == 400
        body = json.loads(exc_info.value.read())
        assert "unsupported content type" in body["error"]
        assert body["status"] == 400

    def test_json_content_type_with_charset_accepted(self, server):
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/translate",
            data=json.dumps(KEYWORD_PAYLOAD).encode("utf-8"),
            headers={"Content-Type": "application/json; charset=utf-8"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200

    def test_error_envelope_is_uniform(self, server):
        # Same {"error": ..., "status": ...} shape the gateway serves.
        status, body = _post(server, "/translate", {"wrong": 1})
        assert status == 400
        assert set(body) == {"error", "status"}
        assert body["status"] == 400

    def test_bad_json_is_400(self, server):
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/translate",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request)
        assert exc_info.value.code == 400

    def test_missing_fields_is_400(self, server):
        status, body = _post(server, "/translate", {"wrong": 1})
        assert status == 400
        assert "keywords" in body["error"]

    def test_invalid_limit_is_400(self, server):
        status, body = _post(server, "/translate", dict(KEYWORD_PAYLOAD, limit=0))
        assert status == 400
        assert "limit" in body["error"]

    def test_non_integer_keyword_limit_is_400(self, server):
        payload = {"keywords": [{"text": "papers", "limit": "five"}]}
        status, body = _post(server, "/translate", payload)
        assert status == 400
        assert "limit" not in body.get("results", [])
        assert "papers" in body["error"]

    def test_non_iterable_aggregates_is_400(self, server):
        payload = {"keywords": [{"text": "papers", "aggregates": 3}]}
        status, body = _post(server, "/translate", payload)
        assert status == 400

    def test_observe_without_drain_schedule_is_400(
        self, mini_db, mini_model, mini_log
    ):
        templar = Templar(mini_db, mini_model, mini_log)
        nlidb = PipelineNLIDB(mini_db, mini_model, templar)
        service = TranslationService(nlidb, max_workers=1)  # no learn batch
        http_server = make_server(service, port=0)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _post(
                http_server, "/translate", dict(KEYWORD_PAYLOAD, observe=True)
            )
            assert status == 400
            assert "--learn-batch" in body["error"]
        finally:
            http_server.shutdown()
            service.close()

    def test_non_boolean_observe_is_400(self, server):
        status, body = _post(
            server, "/translate", dict(KEYWORD_PAYLOAD, observe="false")
        )
        assert status == 400
        assert "observe" in body["error"]

    def test_non_string_comparison_op_is_400(self, server):
        payload = {"keywords": [{"text": "papers", "comparison_op": ["<", ">"]}]}
        status, body = _post(server, "/translate", payload)
        assert status == 400
        assert "comparison_op" in body["error"]

    def test_string_aggregates_is_400_not_char_iterated(self, server):
        payload = {"keywords": [{"text": "papers", "aggregates": "count"}]}
        status, body = _post(server, "/translate", payload)
        assert status == 400
        assert "array" in body["error"]

    def test_bad_content_length_is_400(self, server):
        import http.client

        port = server.server_address[1]
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
        try:
            connection.putrequest("POST", "/translate", skip_host=False)
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert "Content-Length" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_observe_without_templar_is_400_not_dropped(
        self, mini_db, mini_model
    ):
        nlidb = PipelineNLIDB(mini_db, mini_model, None)
        service = TranslationService(nlidb, max_workers=1)
        http_server = make_server(service, port=0)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        try:
            status, body = _post(
                http_server, "/translate", dict(KEYWORD_PAYLOAD, observe=True)
            )
            assert status == 400
            assert "Templar" in body["error"]
        finally:
            http_server.shutdown()
            service.close()

    def test_unexpected_exception_is_500_json(
        self, mini_db, mini_model, mini_log
    ):
        templar = Templar(mini_db, mini_model, mini_log)
        nlidb = PipelineNLIDB(mini_db, mini_model, templar)
        service = TranslationService(nlidb, max_workers=1)

        def explode(keywords):
            raise RuntimeError("wiring bug")

        nlidb.translate = explode
        http_server = make_server(service, port=0)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _post(http_server, "/translate", KEYWORD_PAYLOAD)
            assert status == 500
            assert "RuntimeError" in body["error"]
        finally:
            http_server.shutdown()
            service.close()

    def test_unknown_path_is_404(self, server):
        status, body = _post(server, "/nope", {})
        assert status == 404
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            _get(server, "/also-nope")
        assert exc_info.value.code == 404
