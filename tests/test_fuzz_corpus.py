"""Replay the committed regression corpus (``tests/corpus/``) forever.

Every JSON file under ``tests/corpus/`` is one minimized fuzz case.  A
file whose ``oracle`` names a differential oracle records a violation
that was found and fixed — replaying it proves the fix holds.  A
``self_test`` file documents the harness's own serialize → shrink →
replay path.  Either way the contract is the same: **today, every
oracle must pass on every corpus case.**

To triage a new violation: run ``repro fuzz`` with ``--corpus-dir
tests/corpus``, commit the minimized file it writes, fix the bug, and
this test keeps the case green forever.  See ``docs/fuzzing.md``.
"""

from pathlib import Path

import pytest

from repro.fuzz import FuzzContext, load_corpus
from repro.fuzz.corpus import case_id
from repro.fuzz.oracles import ORACLES

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)


@pytest.fixture(scope="module")
def fuzz_context():
    with FuzzContext() as context:
        yield context


def test_corpus_is_seeded():
    """The corpus exists and is non-empty (satellite requirement)."""
    assert ENTRIES, (
        f"{CORPUS_DIR} must contain at least the harness self-test corpus"
    )


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.name for entry in ENTRIES]
)
def test_corpus_entry_integrity(entry):
    """Filenames embed the content hash; a hand-edited case must re-hash."""
    assert entry.path.name == f"{entry.oracle}-{case_id(entry.case)}.json"
    assert entry.oracle in (*ORACLES, "self_test", "crash")
    assert entry.note, f"{entry.path.name}: corpus entries document why"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.name for entry in ENTRIES]
)
def test_corpus_entry_replays_clean(fuzz_context, entry):
    """No corpus case may violate any oracle today (regressions stay fixed)."""
    violation = fuzz_context.check_case(entry.case)
    assert violation is None, (
        f"{entry.path.name} regressed: [{violation['oracle']}] "
        f"{violation['detail']}\nOriginal note: {entry.note}"
    )
