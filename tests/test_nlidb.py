"""Tests for the SQL builder, Pipeline/Pipeline+ and NaLIR systems."""

import pytest

from repro.core import FragmentContext, Keyword, KeywordMetadata, Templar
from repro.embedding import LexiconModel
from repro.nlidb import NalirNLIDB, NalirParser, PipelineNLIDB
from repro.sql import queries_equivalent

SELECT = FragmentContext.SELECT
WHERE = FragmentContext.WHERE


def kw(text, context, op=None, aggregates=(), **kwargs):
    return Keyword(
        text,
        KeywordMetadata(
            context=context, comparison_op=op, aggregates=aggregates, **kwargs
        ),
    )


@pytest.fixture()
def pipeline(mini_db, mini_model):
    return PipelineNLIDB(mini_db, mini_model, None)


@pytest.fixture()
def pipeline_plus(mini_db, mini_model, mini_templar):
    return PipelineNLIDB(mini_db, mini_model, mini_templar)


class TestPipelineTranslation:
    def test_baseline_reproduces_example1(self, pipeline, mini_db):
        """Word similarity maps "papers" to journal — the wrong SQL."""
        results = pipeline.translate(
            [kw("papers", SELECT), kw("after 2000", WHERE, op=">")]
        )
        assert "journal" in results[0].sql

    def test_augmented_reproduces_example3(self, pipeline_plus, mini_db):
        results = pipeline_plus.translate(
            [kw("papers", SELECT), kw("after 2000", WHERE, op=">")]
        )
        assert queries_equivalent(
            results[0].sql,
            "SELECT title FROM publication WHERE year > 2000",
            mini_db.catalog,
        )

    def test_value_predicate_translation(self, pipeline_plus, mini_db):
        results = pipeline_plus.translate(
            [kw("papers", SELECT), kw("TKDE", WHERE)]
        )
        assert queries_equivalent(
            results[0].sql,
            "SELECT p.title FROM publication p, journal j "
            "WHERE j.name = 'TKDE' AND p.jid = j.jid",
            mini_db.catalog,
        )

    def test_self_join_translation(self, pipeline_plus, mini_db):
        """The paper's Example 7 end to end."""
        results = pipeline_plus.translate(
            [
                kw("papers", SELECT),
                kw("John Smith", WHERE),
                kw("Jane Doe", WHERE),
            ]
        )
        gold = (
            "SELECT p.title FROM author a1, author a2, publication p, "
            "writes w1, writes w2 "
            "WHERE a1.name = 'John Smith' AND a2.name = 'Jane Doe' "
            "AND a1.aid = w1.aid AND a2.aid = w2.aid "
            "AND p.pid = w1.pid AND p.pid = w2.pid"
        )
        assert queries_equivalent(results[0].sql, gold, mini_db.catalog)

    def test_count_aggregate_translation(self, pipeline_plus, mini_db):
        results = pipeline_plus.translate(
            [
                kw("papers", SELECT, aggregates=("COUNT",)),
                kw("John Smith", WHERE),
            ]
        )
        assert queries_equivalent(
            results[0].sql,
            "SELECT COUNT(p.title) FROM publication p, writes w, author a "
            "WHERE a.name = 'John Smith' AND w.aid = a.aid AND w.pid = p.pid",
            mini_db.catalog,
        )

    def test_having_translation(self, pipeline_plus, mini_db):
        results = pipeline_plus.translate(
            [
                kw("authors", SELECT),
                kw("more than 1 papers", WHERE, op=">", aggregates=("COUNT",)),
            ]
        )
        top = results[0].sql
        assert "GROUP BY" in top and "HAVING" in top

    def test_order_by_and_limit(self, pipeline_plus, mini_db):
        results = pipeline_plus.translate(
            [
                kw("papers", SELECT),
                kw("year", FragmentContext.ORDER_BY, descending=True, limit=2),
            ]
        )
        assert results[0].sql.endswith("ORDER BY t1.year DESC LIMIT 2")

    def test_results_are_ranked(self, pipeline_plus):
        results = pipeline_plus.translate(
            [kw("papers", SELECT), kw("after 2000", WHERE, op=">")]
        )
        keys = [r.rank_key for r in results]
        assert keys == sorted(keys, reverse=True)

    def test_unmappable_returns_empty(self, pipeline):
        assert pipeline.translate([kw("zzzqqq", WHERE)]) == []

    def test_executed_answer_matches_database(self, pipeline_plus, mini_db):
        results = pipeline_plus.translate(
            [kw("papers", SELECT), kw("after 2000", WHERE, op=">")]
        )
        answer = mini_db.execute(results[0].sql)
        assert sorted(answer.column()) == [
            "Adaptive Indexing",
            "Scalable Query Processing",
            "Streaming Joins Revisited",
        ]


class TestNalirParser:
    @pytest.fixture()
    def parser(self, mini_db):
        return NalirParser(
            mini_db, ["papers", "authors", "journals", "year"]
        )

    def test_simple_parse(self, parser):
        parsed = parser.parse("return the papers after 2000")
        assert [(k.text, k.metadata.context.value) for k in parsed.keywords] == [
            ("papers", "SELECT"), ("after 2000", "WHERE"),
        ]
        assert parsed.keywords[1].metadata.comparison_op == ">"

    def test_quoted_value(self, parser):
        parsed = parser.parse(
            "return the authors of 'Scalable Query Processing'"
        )
        assert parsed.keywords[1].text == "Scalable Query Processing"

    def test_capitalized_value_run(self, parser):
        parsed = parser.parse("return the papers of John Smith")
        assert parsed.keywords[1].text == "John Smith"

    def test_aggregate_phrase(self, parser):
        parsed = parser.parse("return the number of papers in TKDE")
        assert parsed.keywords[0].metadata.aggregates == ("COUNT",)

    def test_failure_chained_of(self, parser):
        """Failure (c): chained 'of' PPs lose the aggregate."""
        parsed = parser.parse("return the number of papers of John Smith")
        assert parsed.keywords[0].metadata.aggregates == ()
        assert any("chained 'of'" in note for note in parsed.notes)

    def test_failure_relative_clause_relation(self, parser):
        """Failure (a): explicit relation reference in a relative clause."""
        parsed = parser.parse(
            "return the authors who have papers in 'Adaptive Indexing'"
        )
        assert any("mis-attached" in note for note in parsed.notes)
        papers_kw = next(k for k in parsed.keywords if k.text == "papers")
        assert papers_kw.metadata.context is WHERE  # corrupted metadata

    def test_failure_nested_aggregate(self, parser):
        """Failure (b): nested aggregate comparison loses COUNT."""
        parsed = parser.parse("return the authors who have more than 3 papers")
        numeric = parsed.keywords[1]
        assert numeric.metadata.aggregates == ()
        assert any("lost aggregate" in note for note in parsed.notes)

    def test_term_folded_into_comparison(self, parser):
        parsed = parser.parse("return the papers with year above 2000")
        assert parsed.keywords[1].text == "year above 2000"
        assert parsed.keywords[1].metadata.comparison_op == ">"

    def test_wh_word_stripped(self, parser):
        parsed = parser.parse("what are the papers after 2000")
        assert parsed.keywords[0].text == "papers"

    def test_empty_parse_flagged(self, parser):
        parsed = parser.parse("hello world nothing here")
        assert parsed.failed


class TestNalirSystem:
    @pytest.fixture()
    def nalir(self, mini_db, mini_lexicon):
        parser = NalirParser(mini_db, ["papers", "authors", "journals"])
        return NalirNLIDB(mini_db, LexiconModel(mini_lexicon), parser, None)

    @pytest.fixture()
    def nalir_plus(self, mini_db, mini_lexicon, mini_templar):
        parser = NalirParser(mini_db, ["papers", "authors", "journals"])
        return NalirNLIDB(
            mini_db, LexiconModel(mini_lexicon), parser, mini_templar
        )

    def test_translate_nlq(self, nalir):
        results = nalir.translate_nlq("return the papers after 2000")
        assert results  # the baseline translates (possibly wrongly)

    def test_augmented_beats_baseline_on_confusion(
        self, nalir, nalir_plus, mini_db
    ):
        nlq = "return the papers after 2000"
        base = nalir.translate_nlq(nlq)[0]
        plus = nalir_plus.translate_nlq(nlq)[0]
        gold = "SELECT title FROM publication WHERE year > 2000"
        assert not queries_equivalent(base.sql, gold, mini_db.catalog)
        assert queries_equivalent(plus.sql, gold, mini_db.catalog)

    def test_unparseable_nlq_returns_empty(self, nalir):
        assert nalir.translate_nlq("gibberish nothing") == []

    def test_names(self, nalir, nalir_plus):
        assert nalir.name == "NaLIR"
        assert nalir_plus.name == "NaLIR+"
