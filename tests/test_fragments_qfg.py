"""Tests for query fragments (Definition 3) and the QFG (Definition 6)."""

import pytest

from repro.core import Obscurity, QueryFragmentGraph, QueryLog, fragments_of_sql
from repro.core.fragments import FragmentContext, FragmentKind, QueryFragment


def keys(fragments, obscurity=Obscurity.NO_CONST_OP):
    return sorted(f.key(obscurity) for f in fragments)


class TestExtraction:
    def test_definition3_example(self, mini_db):
        """The fragment example right under Definition 3."""
        fragments = fragments_of_sql(
            "SELECT p.title FROM publication p, journal j "
            "WHERE p.year = 15 AND p.jid = j.jid",
            mini_db.catalog,
        )
        assert keys(fragments, Obscurity.FULL) == [
            "FROM::journal",
            "FROM::publication",
            "SELECT::publication.title",
            "WHERE::publication.year = 15",
        ]

    def test_join_conditions_excluded(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT p.title FROM publication p, journal j WHERE p.jid = j.jid",
            mini_db.catalog,
        )
        assert all(f.kind is not FragmentKind.PREDICATE for f in fragments)

    def test_aliases_resolved_to_relations(self, mini_db):
        a = fragments_of_sql(
            "SELECT p.title FROM publication p", mini_db.catalog
        )
        b = fragments_of_sql(
            "SELECT pub.title FROM publication pub", mini_db.catalog
        )
        assert keys(a) == keys(b)

    def test_obscurity_levels(self, mini_db):
        fragment = next(
            f
            for f in fragments_of_sql(
                "SELECT title FROM publication WHERE year > 2000",
                mini_db.catalog,
            )
            if f.kind is FragmentKind.PREDICATE
        )
        assert fragment.key(Obscurity.FULL) == "WHERE::publication.year > 2000"
        assert fragment.key(Obscurity.NO_CONST) == "WHERE::publication.year > ?val"
        assert (
            fragment.key(Obscurity.NO_CONST_OP)
            == "WHERE::publication.year ?op ?val"
        )

    def test_aggregate_fragment(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT COUNT(DISTINCT p.title) FROM publication p",
            mini_db.catalog,
        )
        select = [f for f in fragments if f.context is FragmentContext.SELECT]
        assert select[0].key() == "SELECT::COUNT(DISTINCT publication.title)"

    def test_count_star_single_relation(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT COUNT(*) FROM publication", mini_db.catalog
        )
        select = [f for f in fragments if f.context is FragmentContext.SELECT]
        assert select[0].attribute == "*"
        assert select[0].relation == "publication"

    def test_group_by_and_having(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT j.name, COUNT(p.pid) FROM publication p, journal j "
            "WHERE p.jid = j.jid GROUP BY j.name HAVING COUNT(p.pid) > 2",
            mini_db.catalog,
        )
        contexts = {f.context for f in fragments}
        assert FragmentContext.GROUP_BY in contexts
        assert FragmentContext.HAVING in contexts
        having = next(f for f in fragments if f.context is FragmentContext.HAVING)
        assert having.key(Obscurity.FULL) == "HAVING::COUNT(publication.pid) > 2"

    def test_order_by_fragment(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT title FROM publication ORDER BY year DESC",
            mini_db.catalog,
        )
        order = next(f for f in fragments if f.context is FragmentContext.ORDER_BY)
        assert order.descending
        assert order.key() == "ORDER BY::publication.year"

    def test_in_predicate_fragment(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT title FROM publication WHERE jid IN (1, 2)",
            mini_db.catalog,
        )
        predicate = next(f for f in fragments if f.kind is FragmentKind.PREDICATE)
        assert predicate.operator == "IN"
        assert predicate.key() == "WHERE::publication.jid ?op ?val"

    def test_between_fragment(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT title FROM publication WHERE year BETWEEN 2000 AND 2005",
            mini_db.catalog,
        )
        predicate = next(f for f in fragments if f.kind is FragmentKind.PREDICATE)
        assert predicate.operator == "BETWEEN"
        assert (
            predicate.key(Obscurity.FULL)
            == "WHERE::publication.year BETWEEN 2000 AND 2005"
        )

    def test_or_children_both_counted(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT title FROM publication WHERE year < 2000 OR jid = 1",
            mini_db.catalog,
        )
        predicates = [f for f in fragments if f.kind is FragmentKind.PREDICATE]
        assert len(predicates) == 2

    def test_subquery_fragments_included(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT title FROM publication WHERE year = "
            "(SELECT MAX(year) FROM publication)",
            mini_db.catalog,
        )
        all_keys = keys(fragments)
        assert "SELECT::MAX(publication.year)" in all_keys

    def test_obscured_source_parses(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT title FROM publication WHERE publication.year ?op ?val",
            mini_db.catalog,
        )
        predicate = next(f for f in fragments if f.kind is FragmentKind.PREDICATE)
        assert predicate.operator is None and predicate.value is None
        assert predicate.key(Obscurity.FULL) == "WHERE::publication.year ?op ?val"

    def test_similarity_tokens_value_predicate(self):
        fragment = QueryFragment(
            context=FragmentContext.WHERE,
            kind=FragmentKind.PREDICATE,
            relation="journal",
            attribute="name",
            operator="=",
            value="TKDE",
        )
        assert fragment.similarity_tokens() == ["tkde"]

    def test_similarity_tokens_numeric_predicate_uses_schema(self):
        fragment = QueryFragment(
            context=FragmentContext.WHERE,
            kind=FragmentKind.PREDICATE,
            relation="publication",
            attribute="year",
            operator=">",
            value=2000,
        )
        assert fragment.similarity_tokens() == ["publication", "year"]


class TestQFG:
    def test_figure3_counts(self, mini_db):
        """The Figure 3 walk-through: occurrence and co-occurrence counts."""
        log = QueryLog()
        for _ in range(25):
            log.add("SELECT j.name FROM journal j")
        for _ in range(5):
            log.add("SELECT p.title FROM publication p WHERE p.year > 2003")
        for _ in range(3):
            log.add(
                "SELECT p.title FROM journal j, publication p "
                "WHERE j.name = 'TMC' AND p.jid = j.jid"
            )
        qfg = log.build_qfg(mini_db.catalog)
        assert qfg.total_queries == 33
        assert qfg.nv("FROM::journal") == 28
        assert qfg.nv("FROM::publication") == 8
        assert qfg.nv("SELECT::publication.title") == 8
        assert qfg.nv("WHERE::publication.year ?op ?val") == 5
        assert qfg.nv("WHERE::journal.name ?op ?val") == 3
        assert qfg.ne("SELECT::publication.title", "FROM::publication") == 8
        assert qfg.ne("SELECT::journal.name", "FROM::publication") == 0

    def test_dice_coefficient(self, mini_db, mini_log):
        qfg = mini_log.build_qfg(mini_db.catalog)
        title = "SELECT::publication.title"
        year = "WHERE::publication.year ?op ?val"
        expected = 2 * qfg.ne(title, year) / (qfg.nv(title) + qfg.nv(year))
        assert qfg.dice(title, year) == pytest.approx(expected)
        # Concrete counts from the fixture log: 6 year + 4 TKDE + 3 author
        # + 2 ORDER BY queries project publication.title.
        assert qfg.nv(title) == 15
        assert qfg.ne(title, year) == 6

    def test_dice_of_unseen_pair_is_zero(self, mini_db, mini_log):
        qfg = mini_log.build_qfg(mini_db.catalog)
        assert qfg.dice("SELECT::journal.name", "nope") == 0.0

    def test_self_dice_is_one(self, mini_db, mini_log):
        qfg = mini_log.build_qfg(mini_db.catalog)
        key = "SELECT::publication.title"
        assert qfg.dice(key, key) == 1.0

    def test_fragments_deduplicated_within_query(self, mini_db):
        qfg = QueryFragmentGraph()
        fragments = fragments_of_sql(
            "SELECT title FROM publication WHERE year > 2000 AND year < 2010",
            mini_db.catalog,
        )
        qfg.add_query(fragments)
        # Both year predicates share the NoConstOp key -> counted once.
        assert qfg.nv("WHERE::publication.year ?op ?val") == 1

    def test_relation_dice(self, mini_db, mini_log):
        qfg = mini_log.build_qfg(mini_db.catalog)
        assert qfg.relation_dice("publication", "journal") > 0
        assert qfg.relation_dice("journal", "author") == 0.0

    def test_persistence_round_trip(self, mini_db, mini_log, tmp_path):
        qfg = mini_log.build_qfg(mini_db.catalog)
        path = tmp_path / "qfg.json"
        qfg.save(path)
        loaded = QueryFragmentGraph.load(path)
        assert loaded.total_queries == qfg.total_queries
        assert loaded.obscurity == qfg.obscurity
        for key in qfg.vertices():
            assert loaded.nv(key) == qfg.nv(key)

    def test_malformed_payload_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            QueryFragmentGraph.from_dict({"oops": True})

    def test_log_skips_unparseable_entries(self, mini_db):
        log = QueryLog(
            ["SELECT title FROM publication", "THIS IS NOT SQL ((("]
        )
        qfg = log.build_qfg(mini_db.catalog)
        assert qfg.total_queries == 1
        assert qfg.skipped == 1

    def test_log_strict_mode_raises(self, mini_db):
        from repro.errors import ReproError

        log = QueryLog(["NOT SQL"])
        with pytest.raises(ReproError):
            log.build_qfg(mini_db.catalog, strict=True)

    def test_log_file_round_trip(self, mini_db, mini_log, tmp_path):
        path = tmp_path / "log.sql"
        mini_log.save(path)
        loaded = QueryLog.from_file(path)
        assert len(loaded) == len(mini_log)

    def test_top_fragments(self, mini_db, mini_log):
        qfg = mini_log.build_qfg(mini_db.catalog)
        top = qfg.top_fragments(2)
        assert top[0][0] == "FROM::publication"
