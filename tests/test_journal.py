"""Durable request journal: rotation, retention, crash repair, replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError, JournalError
from repro.obs.journal import (
    KINDS,
    RequestJournal,
    replay_journal,
    segment_files,
)


def _request_row(nlq: str, latency_ms: float = 1.0, tenant: str = "mas"):
    return ("request", 1754550000.0, tenant, nlq, ["papers", "2000"],
            None, latency_ms, True, None, None)


class TestRoundTrip:
    def test_all_three_kinds_replay(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            assert journal.offer(_request_row("return the papers"))
            assert journal.offer((
                "error", 1754550001.0, "mas", "%%%", [], "TranslationError",
                2.5, None,
            ))
            assert journal.log_reload(
                "mas", old_version="a1", new_version="b2",
                carried_observations=3, build_ms=120.0,
            )
            records = journal.records()
        assert [r["kind"] for r in records] == ["request", "error", "reload"]
        assert all(r["kind"] in KINDS for r in records)
        request, error, reload_ = records
        assert request["nlq"] == "return the papers"
        assert request["keywords"] == ["papers", "2000"]
        assert request["cache_hit"] is True
        assert error["error_type"] == "TranslationError"
        assert reload_["old_version"] == "a1"
        assert reload_["carried_observations"] == 3

    def test_result_fields_serialized_from_top_result(self, tmp_path):
        class Result:
            sql = "SELECT 1"
            config_score = 0.5
            join_score = 0.25

        with RequestJournal(tmp_path) as journal:
            row = ("request", 1.0, "mas", "q", [], Result(), 1.0, False,
                   "v7", "trace-1")
            journal.offer(row)
            record = journal.records()[0]
        assert record["sql"] == "SELECT 1"
        assert record["config_score"] == 0.5
        assert record["artifact_version"] == "v7"
        assert record["trace_id"] == "trace-1"

    def test_writer_thread_drains_without_explicit_flush(self, tmp_path):
        import time

        journal = RequestJournal(tmp_path, flush_interval=0.02)
        try:
            journal.offer(_request_row("background"))
            deadline = time.time() + 5.0
            while journal.written == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert journal.written == 1
        finally:
            journal.close()


class TestRotationAndRetention:
    def test_record_never_splits_across_segments(self, tmp_path):
        """A record that would straddle the boundary rotates first."""
        with RequestJournal(tmp_path, segment_bytes=512, segments=50) as j:
            for i in range(20):
                j.offer(_request_row(f"query number {i:04d}"))
            j.flush()
            paths = j.segment_paths()
        assert len(paths) > 1  # rotation actually happened
        for path in paths:
            data = path.read_bytes()
            assert data.endswith(b"\n")
            for line in data.decode().strip().split("\n"):
                assert json.loads(line)["kind"] == "request"

    def test_oversized_record_lands_whole_in_its_own_segment(self, tmp_path):
        with RequestJournal(tmp_path, segment_bytes=256, segments=50) as j:
            j.offer(_request_row("small"))
            j.offer(_request_row("x" * 600))  # bigger than a whole segment
            j.offer(_request_row("small again"))
            j.flush()
            records = j.records()
        assert [r["nlq"] for r in records] == [
            "small", "x" * 600, "small again",
        ]

    def test_retention_deletes_oldest_segments(self, tmp_path):
        with RequestJournal(tmp_path, segment_bytes=512, segments=2) as j:
            for i in range(60):
                j.offer(_request_row(f"query number {i:04d}"))
            j.flush()
            paths = j.segment_paths()
            records = j.records()
        assert len(paths) <= 2
        # The newest records survived; the oldest were pruned with their
        # segments.
        assert records[-1]["nlq"] == "query number 0059"
        assert records[0]["nlq"] != "query number 0000"

    def test_reopen_appends_to_the_tail_segment(self, tmp_path):
        with RequestJournal(tmp_path) as j:
            j.offer(_request_row("first"))
        with RequestJournal(tmp_path) as j:
            j.offer(_request_row("second"))
            records = j.records()
        assert [r["nlq"] for r in records] == ["first", "second"]
        assert len(segment_files(tmp_path)) == 1


class TestCrashRepairAndReplay:
    def test_torn_final_line_is_truncated_on_open(self, tmp_path):
        with RequestJournal(tmp_path) as j:
            j.offer(_request_row("complete"))
        tail = segment_files(tmp_path)[-1]
        with open(tail, "ab") as handle:  # simulated crash mid-append
            handle.write(b'{"kind":"request","nlq":"torn')
        with RequestJournal(tmp_path) as j:
            j.offer(_request_row("after crash"))
            records = j.records()
        assert [r["nlq"] for r in records] == ["complete", "after crash"]
        assert tail.read_bytes().endswith(b"\n")

    def test_replay_skips_torn_line_without_repair(self, tmp_path):
        with RequestJournal(tmp_path) as j:
            j.offer(_request_row("complete"))
        tail = segment_files(tmp_path)[-1]
        with open(tail, "ab") as handle:
            handle.write(b'{"kind":"request","nlq":"torn')
        # Read-only replay (no journal opened, nothing repaired).
        assert [r["nlq"] for r in replay_journal(tmp_path)] == ["complete"]

    def test_replay_is_idempotent(self, tmp_path):
        with RequestJournal(tmp_path) as j:
            for i in range(5):
                j.offer(_request_row(f"q{i}"))
        first = list(replay_journal(tmp_path))
        second = list(replay_journal(tmp_path))
        assert first == second
        assert [r["nlq"] for r in first] == [f"q{i}" for i in range(5)]

    def test_replay_tolerates_corrupt_and_foreign_lines(self, tmp_path):
        with RequestJournal(tmp_path) as j:
            j.offer(_request_row("good"))
        tail = segment_files(tmp_path)[-1]
        with open(tail, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'{"kind": "alien"}\n')
            handle.write(b'[1, 2, 3]\n')
        assert [r["nlq"] for r in replay_journal(tmp_path)] == ["good"]

    def test_replay_of_missing_directory_is_empty(self, tmp_path):
        assert list(replay_journal(tmp_path / "nope")) == []


class TestBackpressureAndErrors:
    def test_full_queue_sheds_instead_of_blocking(self, tmp_path):
        journal = RequestJournal(tmp_path, max_queue=3, flush_interval=3600.0)
        try:
            accepted = [journal.offer(_request_row(f"q{i}")) for i in range(5)]
            assert accepted == [True, True, True, False, False]
            assert journal.dropped == 2
            journal.flush()
            assert len(journal.records()) == 3
        finally:
            journal.close()

    def test_closed_journal_sheds(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.close()
        assert journal.offer(_request_row("late")) is False
        assert journal.dropped == 1
        journal.close()  # idempotent

    def test_unknown_kind_counts_an_encode_error(self, tmp_path):
        with RequestJournal(tmp_path) as journal:
            journal.offer(("martian", 1.0))
            journal.offer(_request_row("fine"))
            records = journal.records()
            assert journal.encode_errors == 1
        assert [r["nlq"] for r in records] == ["fine"]

    def test_invalid_construction_raises(self, tmp_path):
        with pytest.raises(JournalError, match="segment_bytes"):
            RequestJournal(tmp_path, segment_bytes=10)
        with pytest.raises(JournalError, match="segments"):
            RequestJournal(tmp_path, segments=0)


class TestEngineOwnership:
    def test_engine_builds_and_closes_a_config_journal(self, tmp_path):
        from repro.api import Engine, EngineConfig

        jdir = tmp_path / "journal"
        engine = Engine.from_config(
            EngineConfig(dataset="mas", journal_dir=str(jdir))
        )
        try:
            assert engine.journal is not None
            engine.translate("return the papers after 2000")
        finally:
            engine.close()
        records = list(replay_journal(jdir))
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "request"
        assert record["tenant"] == "mas"  # journal_tenant defaults to dataset
        assert record["sql"].startswith("SELECT")
        assert record["latency_ms"] > 0
        assert record["cache_hit"] is False

    def test_cache_hit_flag_flips_on_repeat(self, tmp_path):
        from repro.api import Engine, EngineConfig

        jdir = tmp_path / "journal"
        with Engine.from_config(
            EngineConfig(dataset="mas", journal_dir=str(jdir))
        ) as engine:
            engine.translate("return the papers after 2000")
            engine.translate("return the papers after 2000")
            engine.journal.flush()
            hits = [r["cache_hit"] for r in replay_journal(jdir)]
        assert hits == [False, True]

    def test_errors_are_journaled(self, tmp_path):
        from repro.api import Engine, EngineConfig
        from repro.errors import ReproError

        jdir = tmp_path / "journal"
        with Engine.from_config(
            EngineConfig(dataset="mas", journal_dir=str(jdir))
        ) as engine:
            with pytest.raises(ReproError):
                engine.translate("%%%%")
            engine.journal.flush()
            records = list(replay_journal(jdir))
        assert len(records) == 1
        assert records[0]["kind"] == "error"
        assert records[0]["error_type"]

    def test_injected_journal_conflicts_with_config_journal_dir(self, tmp_path):
        from repro.api import Engine, EngineConfig

        with RequestJournal(tmp_path / "a") as journal:
            with pytest.raises(ConfigError, match="journal_dir"):
                Engine.from_config(
                    EngineConfig(
                        dataset="mas", journal_dir=str(tmp_path / "b")
                    ),
                    journal=journal,
                )

    def test_engine_close_does_not_close_injected_journal(self, tmp_path):
        from repro.api import Engine, EngineConfig

        journal = RequestJournal(tmp_path)
        try:
            with Engine.from_config(
                EngineConfig(dataset="mas"),
                journal=journal,
                journal_tenant="custom",
            ) as engine:
                engine.translate("return the papers after 2000")
            # The engine is closed; the injected journal must still work.
            assert journal.offer(_request_row("still open"))
            records = journal.records()
        finally:
            journal.close()
        assert records[0]["tenant"] == "custom"
