"""Regression pins for the headline accuracy numbers.

Everything in the harness is seeded, so the Table III numbers are exact
constants; these tests pin them with a small tolerance band so honest
refactors (that should not change behaviour) are distinguishable from
accidental accuracy regressions.  If a deliberate calibration change
moves the numbers, update the pins and EXPERIMENTS.md together.
"""

import pytest

from repro.eval import EvalConfig, evaluate_system

#: (dataset, system) -> (kw %, fq %), as recorded in EXPERIMENTS.md.
PINS = {
    ("mas", "Pipeline"): (32.5, 29.4),
    ("mas", "Pipeline+"): (94.3, 78.9),
    ("yelp", "Pipeline"): (71.7, 60.6),
    ("yelp", "Pipeline+"): (84.3, 84.3),
    ("imdb", "Pipeline"): (39.8, 33.6),
    ("imdb", "Pipeline+"): (92.2, 71.9),
}

TOLERANCE = 2.0  # points


@pytest.mark.slow
@pytest.mark.parametrize("dataset_name,system", sorted(PINS))
def test_pinned_accuracy(dataset_name, system, mas_dataset, yelp_dataset,
                         imdb_dataset):
    dataset = {
        "mas": mas_dataset, "yelp": yelp_dataset, "imdb": imdb_dataset
    }[dataset_name]
    result = evaluate_system(dataset, system, EvalConfig())
    kw = 100.0 * result.kw_accuracy
    fq = 100.0 * result.fq_accuracy
    pin_kw, pin_fq = PINS[(dataset_name, system)]
    assert kw == pytest.approx(pin_kw, abs=TOLERANCE), (
        f"{dataset_name}/{system} KW drifted: {kw:.1f} vs pinned {pin_kw}"
    )
    assert fq == pytest.approx(pin_fq, abs=TOLERANCE), (
        f"{dataset_name}/{system} FQ drifted: {fq:.1f} vs pinned {pin_fq}"
    )


@pytest.mark.slow
def test_augmentation_factor_headline(mas_dataset):
    """The paper's headline: up to 138% top-1 improvement.  Ours exceeds
    2x on MAS; a drop below 2x signals a calibration regression."""
    baseline = evaluate_system(mas_dataset, "Pipeline", EvalConfig())
    augmented = evaluate_system(mas_dataset, "Pipeline+", EvalConfig())
    assert augmented.fq_accuracy / baseline.fq_accuracy > 2.0
