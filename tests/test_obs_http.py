"""Observability over HTTP: /metrics scrape pages and /admin/traces.

These ride the same stdlib-client-against-live-server pattern as
test_serving_http.py, but focus on the operator surface: the Prometheus
content type, scrape-parseability, error-type counters, and retrieving
the trace a translate response advertised in its provenance.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Engine, EngineConfig
from repro.core import Templar
from repro.nlidb import NalirParser, PipelineNLIDB
from repro.obs.prometheus import parse_exposition
from repro.serving import TranslationService, make_server


@pytest.fixture()
def engine_server(mini_db, mini_model, mini_log):
    templar = Templar(mini_db, mini_model, mini_log)
    nlidb = PipelineNLIDB(mini_db, mini_model, templar)
    service = TranslationService(nlidb, max_workers=2)
    parser = NalirParser(mini_db, ["papers", "journals", "authors"],
                         simulate_failures=False)
    http_server = make_server(service, port=0, parser=parser)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        service.close()


def _get_raw(server, path: str):
    port = server.server_address[1]
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def _post(server, path: str, payload: dict):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


PAYLOAD = {"nlq": "return the papers after 2000"}


class TestMetricsScrape:
    def test_metrics_serves_the_prometheus_content_type(self, engine_server):
        status, content_type, _ = _get_raw(engine_server, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")

    def test_scrape_parses_and_reflects_traffic(self, engine_server):
        _post(engine_server, "/translate", PAYLOAD)
        _post(engine_server, "/translate", PAYLOAD)
        _, _, page = _get_raw(engine_server, "/metrics")
        samples = parse_exposition(page)
        [(_, requests)] = samples["repro_requests_total"]
        assert requests >= 2
        counts = samples["repro_translate_latency_seconds_count"]
        assert counts[0][1] >= 2
        buckets = samples["repro_translate_latency_seconds_bucket"]
        values = [value for _, value in buckets]
        assert values == sorted(values)

    def test_json_snapshot_still_available_behind_the_flag(self, engine_server):
        status, content_type, body = _get_raw(
            engine_server, "/metrics?format=json"
        )
        assert status == 200
        assert content_type.startswith("application/json")
        assert "uptime_seconds" in json.loads(body)

    def test_failed_translations_counted_by_error_type(
        self, mini_db, mini_model, mini_log
    ):
        templar = Templar(mini_db, mini_model, mini_log)
        nlidb = PipelineNLIDB(mini_db, mini_model, templar)
        service = TranslationService(nlidb, max_workers=1)

        def explode(keywords):
            raise RuntimeError("wiring bug")

        nlidb.translate = explode
        http_server = make_server(service, port=0)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _ = _post(
                http_server, "/translate",
                {"keywords": [{"text": "papers", "context": "SELECT"}]},
            )
            assert status == 500
            assert service.metrics.counter(
                "translate_errors", labels={"type": "RuntimeError"}
            ) == 1
            _, _, page = _get_raw(http_server, "/metrics")
            [(labels, value)] = parse_exposition(page)[
                "repro_translate_errors_total"
            ]
            assert labels == {"type": "RuntimeError"}
            assert value == 1.0
        finally:
            http_server.shutdown()
            service.close()


class TestAdminTraces:
    def test_provenance_trace_is_retrievable_over_http(self, engine_server):
        status, body = _post(engine_server, "/translate", PAYLOAD)
        assert status == 200
        trace_id = body["provenance"]["trace_id"]

        status, _, raw = _get_raw(engine_server, f"/admin/traces?id={trace_id}")
        assert status == 200
        payload = json.loads(raw)
        assert payload["count"] == 1
        trace = payload["traces"][0]
        assert trace["trace_id"] == trace_id
        assert trace["spans"]["name"] == "request"
        stage_names = [span["name"] for span in trace["spans"]["children"]]
        assert "translate" in stage_names

        status, _, raw = _get_raw(engine_server, "/admin/traces")
        listed = json.loads(raw)
        assert trace_id in {t["trace_id"] for t in listed["traces"]}

    def test_unknown_trace_id_returns_empty_list(self, engine_server):
        status, _, raw = _get_raw(engine_server, "/admin/traces?id=nope")
        assert status == 200
        assert json.loads(raw) == {"count": 0, "traces": []}


class TestEngineTracing:
    def test_trace_knobs_flow_from_config(self):
        config = EngineConfig(dataset="mas", tracing=False)
        with Engine.from_config(config) as engine:
            assert engine.tracer.enabled is False
            response = engine.translate("return the papers after 2000")
            assert "trace_id" not in response.provenance
            assert len(engine.tracer.store) == 0

    def test_slow_query_log_fires_past_the_threshold(self, caplog):
        import logging

        config = EngineConfig(dataset="mas", slow_query_ms=0.0001)
        with Engine.from_config(config) as engine:
            with caplog.at_level(logging.WARNING, logger="repro.slowquery"):
                engine.translate("return the papers after 2000")
        records = [
            record for record in caplog.records
            if record.name == "repro.slowquery"
        ]
        assert records, "expected a slow-query WARNING"
        assert records[0].total_ms >= 0.0
