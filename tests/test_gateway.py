"""Gateway subsystem tests: config codec, hosts, hot-swap, background loops."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.api import EngineConfig
from repro.core.log import QueryLog
from repro.errors import AdmissionError, ConfigError, GatewayError, ServingError
from repro.gateway import (
    EngineHost,
    Gateway,
    GatewayConfig,
    LearningScheduler,
    Reloader,
    TenantConfig,
)
from repro.serving import ArtifactStore, MetricsRegistry
from repro.serving.wire import TranslationRequest, TranslationResponse


def tenant_dict(dataset: str = "mas", **extra) -> dict:
    return {"engine": dict({"dataset": dataset}, **extra)}


class TestGatewayConfig:
    def test_round_trip_identity(self):
        config = GatewayConfig.from_dict({
            "tenants": {
                "mas": tenant_dict("mas"),
                "yelp": {"engine": {"dataset": "yelp"}, "max_in_flight": 8},
            },
            "reload_poll_seconds": 2.5,
            "learn_interval_seconds": 60.0,
            "learn_jitter": 0.2,
        })
        assert GatewayConfig.from_dict(config.to_dict()) == config
        assert config.tenants["yelp"].max_in_flight == 8
        assert config.tenants["mas"].engine == EngineConfig(dataset="mas")

    def test_file_round_trip(self, tmp_path):
        config = GatewayConfig.from_dict({"tenants": {"mas": tenant_dict()}})
        saved = config.save(tmp_path / "gateway.json")
        assert GatewayConfig.from_file(saved) == config

    def test_unknown_gateway_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown gateway config field"):
            GatewayConfig.from_dict(
                {"tenants": {"mas": tenant_dict()}, "poll": 1}
            )

    def test_unknown_tenant_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown tenant config field"):
            GatewayConfig.from_dict(
                {"tenants": {"mas": {"engine": {"dataset": "mas"}, "cap": 9}}}
            )

    def test_unknown_engine_field_rejected_through_tenant(self):
        with pytest.raises(ConfigError, match="unknown engine config field"):
            GatewayConfig.from_dict(
                {"tenants": {"mas": {"engine": {"dataset": "mas", "capa": 5}}}}
            )

    def test_at_least_one_tenant_required(self):
        with pytest.raises(ConfigError, match="at least one tenant"):
            GatewayConfig.from_dict({"tenants": {}})

    def test_invalid_tenant_ids_rejected(self):
        for bad in ("", "a/b", "a b", "x" * 65, "-leading"):
            with pytest.raises(ConfigError, match="invalid tenant id"):
                GatewayConfig.from_dict({"tenants": {bad: tenant_dict()}})

    def test_validation_bounds(self):
        with pytest.raises(ConfigError, match="max_in_flight"):
            TenantConfig(engine=EngineConfig(), max_in_flight=0)
        with pytest.raises(ConfigError, match="reload_poll_seconds"):
            GatewayConfig.from_dict(
                {"tenants": {"mas": tenant_dict()}, "reload_poll_seconds": 0}
            )
        with pytest.raises(ConfigError, match="learn_interval_seconds"):
            GatewayConfig.from_dict(
                {"tenants": {"mas": tenant_dict()},
                 "learn_interval_seconds": -1}
            )
        with pytest.raises(ConfigError, match="learn_jitter"):
            GatewayConfig.from_dict(
                {"tenants": {"mas": tenant_dict()}, "learn_jitter": 1.0}
            )

    def test_wrong_typed_values_raise_config_error(self):
        # Strict decoding covers value types too, not just unknown keys:
        # a traceback-y TypeError would break the CLI's exit-code contract.
        with pytest.raises(ConfigError, match="invalid gateway config"):
            GatewayConfig.from_dict(
                {"tenants": {"mas": tenant_dict()},
                 "reload_poll_seconds": "5"}
            )
        with pytest.raises(ConfigError, match="invalid gateway config"):
            GatewayConfig.from_dict(
                {"tenants": {"mas": tenant_dict()}, "learn_jitter": None}
            )
        with pytest.raises(ConfigError, match="invalid tenant config"):
            GatewayConfig.from_dict(
                {"tenants": {"mas": {"engine": {"dataset": "mas"},
                                     "max_in_flight": "8"}}}
            )

    def test_fingerprint_tracks_content(self):
        one = GatewayConfig.from_dict({"tenants": {"mas": tenant_dict()}})
        same = GatewayConfig.from_dict(one.to_dict())
        other = GatewayConfig.from_dict(
            {"tenants": {"mas": tenant_dict()}, "learn_jitter": 0.3}
        )
        assert one.fingerprint() == same.fingerprint()
        assert one.fingerprint() != other.fingerprint()


# ---------------------------------------------------------------- stubs


class StubService:
    def __init__(self) -> None:
        self.pending: list[str] = []
        self.closed = False

    @property
    def pending_observations(self) -> int:
        return len(self.pending)

    def take_pending(self) -> list[str]:
        pending, self.pending = self.pending, []
        return pending


class StubEngine:
    """The slice of Engine that EngineHost touches, controllable in tests."""

    def __init__(self, version: str = "v1", gate: threading.Event | None = None):
        self.artifact_version = version
        self.templar = object()  # "can learn"
        self.service = StubService()
        self.absorbed = 0
        self.closed = False
        self._gate = gate

    def translate(self, request, *, observe=None, idempotency_key=None):
        if self._gate is not None:
            self._gate.wait(5.0)
        return TranslationResponse(
            request=request,
            results=[],
            provenance={"artifact_version": self.artifact_version},
        )

    def take_pending(self):
        return self.service.take_pending()

    def stats(self) -> dict:
        return {
            "caches": [],
            "metrics": {"counters": {}},
            "pending_observations": len(self.service.pending),
        }

    def observe(self, sql: str) -> None:
        self.service.pending.append(sql)

    def absorb_pending(self) -> int:
        absorbed = len(self.service.take_pending())
        self.absorbed += absorbed
        return absorbed

    def apply_feedback(self) -> int:
        return 0  # no control plane behind the stub

    def close(self) -> None:
        self.closed = True
        self.service.closed = True


def stub_host(tenant="t", max_in_flight=64, factory=None) -> EngineHost:
    config = TenantConfig(
        engine=EngineConfig(dataset="mas"), max_in_flight=max_in_flight
    )
    return EngineHost(
        tenant, config, engine_factory=factory or (lambda: StubEngine())
    )


REQUEST = TranslationRequest(nlq="return the papers")


class TestEngineHost:
    def test_not_started_host_rejects_requests(self):
        host = stub_host()
        assert not host.live
        with pytest.raises(GatewayError, match="no live engine"):
            host.translate(REQUEST)

    def test_translate_tags_tenant_provenance(self):
        host = stub_host("alpha").start()
        response = host.translate(REQUEST)
        assert response.provenance["tenant"] == "alpha"
        assert response.provenance["artifact_version"] == "v1"

    def test_start_is_idempotent(self):
        engines = []

        def factory():
            engines.append(StubEngine())
            return engines[-1]

        host = stub_host(factory=factory).start().start()
        assert len(engines) == 1

    def test_admission_limit_rejects_with_429_error(self):
        gate = threading.Event()
        host = stub_host(max_in_flight=1, factory=lambda: StubEngine(gate=gate))
        host.start()
        started = threading.Event()
        done: list[TranslationResponse] = []

        def slow_request():
            started.set()
            done.append(host.translate(REQUEST))

        thread = threading.Thread(target=slow_request)
        thread.start()
        started.wait(5.0)
        deadline = time.time() + 5.0
        while host.in_flight == 0 and time.time() < deadline:
            time.sleep(0.001)
        assert host.in_flight == 1
        with pytest.raises(AdmissionError, match="in-flight limit"):
            host.translate(REQUEST)
        assert host.rejected_count == 1
        gate.set()
        thread.join(5.0)
        assert len(done) == 1
        # Slot released: the next request is admitted again.
        host.translate(REQUEST)
        host.close()

    def test_reload_swaps_and_closes_old_engine(self):
        versions = iter(["v1", "v2"])
        engines: list[StubEngine] = []

        def factory():
            engines.append(StubEngine(next(versions)))
            return engines[-1]

        host = stub_host(factory=factory).start()
        result = host.reload()
        assert (result.old_version, result.new_version) == ("v1", "v2")
        assert host.artifact_version == "v2"
        assert engines[0].closed and not engines[1].closed
        assert host.reload_count == 1
        host.close()
        assert engines[1].closed

    def test_reload_carries_pending_observations_forward(self):
        engines = [StubEngine("v1"), StubEngine("v2")]
        supply = iter(engines)
        host = stub_host(factory=lambda: next(supply)).start()
        host.engine.observe("SELECT 1")
        host.engine.observe("SELECT 2")
        result = host.reload()
        assert result.carried_observations == 2
        # The retired engine absorbed nothing: the observations moved to
        # the replacement's queue instead of dying with the old graph.
        assert engines[0].absorbed == 0
        assert engines[1].service.pending == ["SELECT 1", "SELECT 2"]
        host.close()

    def test_in_flight_request_finishes_on_old_engine_during_reload(self):
        gate = threading.Event()
        engines = [StubEngine("v1", gate=gate), StubEngine("v2")]
        supply = iter(engines)
        host = stub_host(factory=lambda: next(supply)).start()
        responses: list[TranslationResponse] = []
        thread = threading.Thread(
            target=lambda: responses.append(host.translate(REQUEST))
        )
        thread.start()
        deadline = time.time() + 5.0
        while host.in_flight == 0 and time.time() < deadline:
            time.sleep(0.001)
        # Swap while the request is pinned to v1; drain must wait for it.
        reload_done = threading.Event()
        reload_thread = threading.Thread(
            target=lambda: (host.reload(), reload_done.set())
        )
        reload_thread.start()
        time.sleep(0.05)
        assert not engines[0].closed  # still draining: request in flight
        gate.set()
        thread.join(5.0)
        reload_thread.join(5.0)
        assert reload_done.is_set()
        assert responses[0].provenance["artifact_version"] == "v1"
        assert engines[0].closed
        assert host.artifact_version == "v2"
        host.close()

    def test_absorb_pending_uses_current_engine(self):
        host = stub_host().start()
        host.engine.observe("SELECT 1")
        assert host.absorb_pending() == 1
        assert host.absorb_pending() == 0
        host.close()
        assert host.absorb_pending() == 0  # closed host is a no-op

    def test_closed_host_refuses_traffic_and_reload(self):
        host = stub_host().start()
        host.close()
        host.close()  # idempotent
        with pytest.raises(GatewayError):
            host.translate(REQUEST)
        with pytest.raises(GatewayError, match="closed"):
            host.reload()


# ------------------------------------------------- hot-swap under real load


@pytest.fixture(scope="module")
def mas_store(tmp_path_factory):
    """An artifact store holding two published MAS versions."""
    from repro.datasets import load_dataset

    root = tmp_path_factory.mktemp("store")
    dataset = load_dataset("mas")
    store = ArtifactStore(root)
    v1 = store.compile(dataset).version
    log = QueryLog(
        [item.gold_sql for item in dataset.usable_items()]
        + ["SELECT name FROM author"]
    )
    v2 = store.compile(dataset, log).version
    return root, v1, v2


def artifact_tenant(root, version=None, **extra) -> TenantConfig:
    return TenantConfig.from_dict({
        "engine": dict(
            {
                "dataset": "mas",
                "log_source": "artifacts",
                "artifacts": str(root),
                "artifact_version": version,
            },
            **extra,
        )
    })


class TestConcurrentHotSwap:
    def test_hammered_translate_survives_reload(self, mas_store):
        """The acceptance hammer: no errors, only old/new versions served."""
        root, v1, v2 = mas_store
        host = EngineHost("mas", artifact_tenant(root, version=v1))
        host.start()
        # Unpin so the reload resolves LATEST (= v2).
        host.config = artifact_tenant(root)
        assert host.artifact_version == v1

        requests = [
            TranslationRequest(nlq="return the papers after 2000"),
            TranslationRequest(nlq="return the authors"),
            TranslationRequest(nlq="return the papers"),
        ]
        errors: list[Exception] = []
        versions: list[str] = []
        stop = threading.Event()

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            while not stop.is_set():
                try:
                    response = host.translate(rng.choice(requests))
                    versions.append(response.provenance["artifact_version"])
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # traffic flowing on v1
        result = host.reload()
        time.sleep(0.1)  # traffic flowing on v2
        stop.set()
        for thread in threads:
            thread.join(10.0)

        assert not errors, errors
        assert (result.old_version, result.new_version) == (v1, v2)
        served = set(versions)
        assert served <= {v1, v2}
        assert v1 in served and v2 in served  # traffic saw both generations
        # Requests issued after the swap land on the new generation only.
        assert host.translate(requests[0]).provenance[
            "artifact_version"
        ] == v2
        host.close()

    def test_cache_stats_reset_after_swap(self, mas_store):
        root, v1, v2 = mas_store
        host = EngineHost("mas", artifact_tenant(root))
        host.start()
        request = TranslationRequest(nlq="return the papers after 2000")
        host.translate(request)
        host.translate(request)
        warm = {
            cache["name"]: cache
            for cache in host.stats()["engine"]["caches"]
        }
        assert warm["translate"]["hits"] >= 1
        host.reload()
        fresh = {
            cache["name"]: cache
            for cache in host.stats()["engine"]["caches"]
        }
        assert all(
            cache["hits"] == 0 and cache["misses"] == 0
            for cache in fresh.values()
        )
        host.close()


class TestReloader:
    def test_check_once_picks_up_new_version(self, mas_store, tmp_path):
        root, v1, v2 = mas_store
        host = EngineHost("mas", artifact_tenant(root))
        host.start()
        assert host.artifact_version == v2  # LATEST at start

        # Republish into a fresh store so the poll sees v1 -> v2 appear.
        from repro.datasets import load_dataset

        dataset = load_dataset("mas")
        fresh_root = tmp_path / "store"
        store = ArtifactStore(fresh_root)
        first = store.compile(dataset).version
        host = EngineHost("mas", artifact_tenant(fresh_root))
        host.start()
        assert host.artifact_version == first

        metrics = MetricsRegistry()
        reloader = Reloader({"mas": host}, poll_seconds=30.0, metrics=metrics)
        assert reloader.check_once() == []  # nothing new yet

        log = QueryLog(
            [item.gold_sql for item in dataset.usable_items()]
            + ["SELECT name FROM author", "SELECT title FROM publication"]
        )
        published = store.compile(dataset, log).version
        results = reloader.check_once()
        assert [result.new_version for result in results] == [published]
        assert host.artifact_version == published
        assert metrics.counter("gateway_reloads") == 1
        assert reloader.check_once() == []  # already serving the latest
        host.close()

    def test_pinned_and_log_built_tenants_are_not_watched(self, mas_store):
        root, v1, _ = mas_store
        pinned = EngineHost("pinned", artifact_tenant(root, version=v1))
        log_built = stub_host("logs")
        assert pinned.latest_published_version() is None
        assert log_built.latest_published_version() is None
        assert not pinned.has_newer_version()

    def test_poll_thread_starts_and_stops(self):
        host = stub_host().start()
        reloader = Reloader({"t": host}, poll_seconds=0.01)
        reloader.start()
        time.sleep(0.05)
        reloader.stop()
        assert reloader._thread is None
        host.close()

    def test_reload_error_is_counted_not_raised(self, mas_store):
        root, v1, v2 = mas_store

        class FailingHost(EngineHost):
            def has_newer_version(self):
                raise GatewayError("store offline")

        failing = FailingHost("bad", artifact_tenant(root))
        healthy = stub_host("ok").start()
        metrics = MetricsRegistry()
        reloader = Reloader(
            {"bad": failing, "ok": healthy}, poll_seconds=30.0, metrics=metrics
        )
        assert reloader.check_once() == []
        assert metrics.counter("gateway_reload_errors") == 1
        healthy.close()


class TestLearningScheduler:
    def test_absorb_all_sums_across_tenants(self):
        first = stub_host("a").start()
        second = stub_host("b").start()
        first.engine.observe("SELECT 1")
        first.engine.observe("SELECT 2")
        second.engine.observe("SELECT 3")
        metrics = MetricsRegistry()
        scheduler = LearningScheduler(
            {"a": first, "b": second}, 60.0, metrics=metrics
        )
        assert scheduler.absorb_all() == 3
        assert metrics.counter("gateway_learned") == 3
        assert scheduler.absorb_all() == 0
        first.close()
        second.close()

    def test_jittered_delay_stays_in_bounds(self):
        scheduler = LearningScheduler(
            {}, 10.0, jitter=0.2, rng=random.Random(7)
        )
        delays = [scheduler.next_delay() for _ in range(200)]
        assert all(8.0 <= delay <= 12.0 for delay in delays)
        assert len(set(round(delay, 6) for delay in delays)) > 1

    def test_zero_jitter_is_exact(self):
        scheduler = LearningScheduler({}, 5.0, jitter=0.0)
        assert scheduler.next_delay() == 5.0

    def test_thread_absorbs_periodically_and_stops(self):
        host = stub_host().start()
        host.engine.observe("SELECT 1")
        scheduler = LearningScheduler({"t": host}, 0.01, jitter=0.0)
        scheduler.start()
        deadline = time.time() + 5.0
        while host.engine.service.pending and time.time() < deadline:
            time.sleep(0.005)
        scheduler.stop()
        assert scheduler._thread is None
        assert not host.engine.service.pending
        host.close()

    def test_absorb_error_is_counted_not_raised(self):
        class FailingHost(EngineHost):
            def absorb_pending(self):
                raise ServingError("boom")

        failing = FailingHost(
            "bad", TenantConfig(engine=EngineConfig(dataset="mas")),
            engine_factory=StubEngine,
        )
        healthy = stub_host("ok").start()
        healthy.engine.observe("SELECT 1")
        metrics = MetricsRegistry()
        scheduler = LearningScheduler(
            {"bad": failing, "ok": healthy}, 60.0, metrics=metrics
        )
        assert scheduler.absorb_all() == 1
        assert metrics.counter("gateway_learn_errors") == 1
        healthy.close()


class TestGatewayFacade:
    def build(self, **config_extra) -> Gateway:
        config = GatewayConfig.from_dict(
            {"tenants": {"a": tenant_dict(), "b": tenant_dict()},
             **config_extra}
        )
        return Gateway(
            config,
            engine_factories={
                "a": lambda: StubEngine("va"),
                "b": lambda: StubEngine("vb"),
            },
        )

    def test_ready_flips_with_start_and_close(self):
        gateway = self.build()
        assert not gateway.ready()
        gateway.start()
        assert gateway.ready()
        gateway.close()
        assert not gateway.ready()

    def test_translate_routes_by_tenant(self):
        with self.build() as gateway:
            response = gateway.translate("b", REQUEST)
            assert response.provenance["tenant"] == "b"
            assert response.provenance["artifact_version"] == "vb"
            assert gateway.metrics.counter("tenant.b.requests") == 1
            assert gateway.metrics.counter("gateway_requests") == 1

    def test_unknown_tenant_raises_gateway_error(self):
        with self.build() as gateway:
            with pytest.raises(GatewayError, match="unknown tenant"):
                gateway.translate("nope", REQUEST)
            with pytest.raises(GatewayError, match="unknown tenant"):
                gateway.reload("nope")

    def test_unknown_factory_tenant_rejected(self):
        config = GatewayConfig.from_dict({"tenants": {"a": tenant_dict()}})
        with pytest.raises(GatewayError, match="not in the config"):
            Gateway(config, engine_factories={"zz": StubEngine})

    def test_stats_isolate_tenants_and_aggregate(self):
        with self.build() as gateway:
            gateway.translate("a", REQUEST)
            stats = gateway.stats()
            assert set(stats["tenants"]) == {"a", "b"}
            assert stats["aggregate"]["tenants"] == 2
            assert stats["aggregate"]["live_tenants"] == 2
            assert stats["ready"] is True
            assert stats["tenants"]["a"]["live"] is True

    def test_pending_observations_totals_live_tenants(self):
        with self.build() as gateway:
            gateway.host("a").engine.observe("SELECT 1")
            gateway.host("b").engine.observe("SELECT 2")
            assert gateway.pending_observations() == 2

    def test_background_loops_wired_from_config(self):
        gateway = self.build(
            reload_poll_seconds=30.0, learn_interval_seconds=60.0
        )
        try:
            assert gateway.reloader is not None
            assert gateway.scheduler is not None
            assert gateway.learning_scheduled
        finally:
            gateway.close()
        bare = self.build()
        try:
            assert bare.reloader is None and bare.scheduler is None
            assert not bare.learning_scheduled
        finally:
            bare.close()

    def test_close_is_idempotent_and_closes_engines(self):
        gateway = self.build()
        gateway.start()
        engine = gateway.host("a").engine
        gateway.close()
        gateway.close()
        assert engine.closed

    def test_close_racing_start_never_leaves_loops_running(self):
        # SIGTERM during warm-up: start() runs on a background thread
        # while close() fires.  The background loops must not come up
        # after close() stopped them (they would poll closed hosts
        # forever with no way to stop).
        gate = threading.Event()

        def slow_factory():
            gate.wait(5.0)
            return StubEngine()

        config = GatewayConfig.from_dict({
            "tenants": {"a": tenant_dict()},
            "reload_poll_seconds": 0.01,
            "learn_interval_seconds": 0.01,
        })
        gateway = Gateway(config, engine_factories={"a": slow_factory})
        warmup = threading.Thread(target=gateway.start)
        warmup.start()
        time.sleep(0.02)  # warm-up is blocked inside the factory
        closer = threading.Thread(target=gateway.close)
        closer.start()
        time.sleep(0.02)
        gate.set()
        warmup.join(5.0)
        closer.join(5.0)
        assert gateway.reloader._thread is None
        assert gateway.scheduler._thread is None
        assert not gateway.ready()
