"""Quality drift + shadow canary: synthetic distributions, replay diffs."""

from __future__ import annotations

import json
import threading
import types
import urllib.request

import pytest

from repro.obs.canary import CanaryReport, run_canary, tail_requests
from repro.obs.drift import (
    DriftMonitor,
    distribution_shift,
    normalized_entropy,
)
from repro.obs.histogram import Histogram
from repro.obs.journal import RequestJournal, replay_journal
from repro.obs.prometheus import parse_exposition
from repro.obs.slo import SLOPolicy
from repro.serving import MetricsRegistry


class Result:
    """The two attributes the drift/canary paths read off a ranking."""

    def __init__(self, sql: str, config_score: float = 1.0):
        self.sql = sql
        self.config_score = config_score


def feed(monitor: DriftMonitor, scores, sql="SELECT 1", truncated=0):
    for score in scores:
        monitor.observe([Result(sql, score)], truncated=truncated)


class TestDriftMonitor:
    def test_threshold_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="threshold"):
            DriftMonitor(0.0)
        with pytest.raises(ValueError, match="threshold"):
            DriftMonitor(1.5)

    def test_empty_window_tick_is_a_no_op(self):
        monitor = DriftMonitor(0.2)
        assert monitor.tick("learn") is None
        assert monitor.ticks == 0

    def test_first_window_becomes_the_reference(self):
        monitor = DriftMonitor(0.2, min_samples=5)
        feed(monitor, [0.5] * 10)
        report = monitor.tick("learn")
        assert report is not None and not report.flagged
        assert report.reference_samples == 0
        assert monitor.stats()["reference_samples"] == 10

    def test_stable_distribution_never_flags(self):
        monitor = DriftMonitor(0.2, min_samples=5)
        for _ in range(4):
            feed(monitor, [0.4, 0.5, 0.6] * 5)
            report = monitor.tick("learn")
            assert not report.flagged
        assert monitor.flags == 0

    def test_shifted_scores_flag_past_the_threshold(self):
        monitor = DriftMonitor(0.5, min_samples=5)
        feed(monitor, [0.2] * 20)
        monitor.tick("learn")
        # Disjoint mass: total-variation distance 1.0 > 0.5.
        feed(monitor, [1.5] * 20)
        report = monitor.tick("reload")
        assert report.flagged
        assert report.score_shift == pytest.approx(1.0)
        assert report.drift_score == pytest.approx(1.0)
        assert monitor.flags == 1

    def test_small_windows_are_absorbed_without_judgment(self):
        monitor = DriftMonitor(0.5, min_samples=50)
        feed(monitor, [0.2] * 60)
        monitor.tick("learn")
        feed(monitor, [1.5] * 10)  # fully shifted, but tiny
        report = monitor.tick("learn")
        assert not report.flagged
        # The tiny window still joined the lifetime reference.
        assert monitor.stats()["reference_samples"] == 70

    def test_truncation_rate_shift_flags(self):
        monitor = DriftMonitor(0.5, min_samples=5)
        feed(monitor, [0.5] * 20, truncated=0)
        monitor.tick("learn")
        feed(monitor, [0.5] * 20, truncated=1)
        report = monitor.tick("learn")
        assert report.truncation_delta == pytest.approx(1.0)
        assert report.flagged

    def test_adopted_reference_judges_the_first_new_window(self):
        """The reload carry-over: a fresh monitor with the old engine's
        reference flags immediately when the new artifact answers
        differently."""
        old = DriftMonitor(0.5, min_samples=5)
        feed(old, [0.2] * 20)
        old.tick("learn")
        fresh = DriftMonitor(0.5, min_samples=5)
        fresh.adopt_reference(old.reference_snapshot())
        feed(fresh, [1.5] * 20)
        report = fresh.tick("reload")
        assert report.flagged and report.reference_samples == 20
        # adopt_reference never clobbers an existing reference.
        other = DriftMonitor(0.5, min_samples=5)
        feed(other, [1.0] * 10)
        other.tick("learn")
        other.adopt_reference(old.reference_snapshot())
        assert other.stats()["reference_samples"] == 10

    def test_publish_exports_gauge_even_before_the_first_tick(self):
        registry = MetricsRegistry()
        monitor = DriftMonitor(0.2)
        monitor.publish(registry)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["drift_score"] == 0.0
        assert snapshot["counters"]["drift_ticks"] == 0

    def test_distribution_shift_guards(self):
        a = Histogram((0.5, 1.0))
        b = Histogram((0.5,))
        with pytest.raises(ValueError, match="bounds"):
            distribution_shift(a, b)
        assert distribution_shift(a, Histogram((0.5, 1.0))) == 0.0

    def test_entropy_collapse_is_visible(self):
        spread = {f"k{i}": 1 for i in range(8)}
        assert normalized_entropy(spread) == pytest.approx(1.0)
        assert normalized_entropy({"k0": 8}) == 0.0


# --------------------------------------------------------------- canary


class StubEngine:
    """Keyword-joining fake: ``answers`` overrides per joined text."""

    parser = None

    def __init__(self, answers=None, score=1.0, failing=False):
        self._answers = answers or {}
        self._score = score
        self._failing = failing
        self.service = types.SimpleNamespace(translate=self._translate)

    def _translate(self, keywords):
        if self._failing:
            raise RuntimeError("boom")
        text = " ".join(k.text for k in keywords)
        return [Result(self._answers.get(text, f"SELECT '{text}'"),
                       self._score)]


def record(texts):
    return {"kind": "request", "nlq": None, "keywords": list(texts)}


class TestRunCanary:
    def test_agreement_passes(self):
        report = run_canary(
            StubEngine(), StubEngine(),
            [record(["papers"]), record(["authors"])],
            tenant="mas", threshold=0.1,
        )
        assert report.replayed == 2 and report.mismatches == 0
        assert report.passed and not report.blocked
        assert "2 request(s)" in report.describe()

    def test_divergence_above_threshold_blocks(self):
        candidate = StubEngine({"papers": "SELECT wrong"})
        report = run_canary(
            StubEngine(), candidate,
            [record(["papers"]), record(["authors"]), record(["venues"])],
            tenant="mas", threshold=0.25,
            old_version="v1", new_version="v2",
        )
        assert report.divergence == pytest.approx(1 / 3)
        assert not report.passed and report.blocked
        payload = report.as_dict()
        assert payload["old_version"] == "v1"
        assert payload["blocked"] is True

    def test_force_overrides_the_block(self):
        candidate = StubEngine({"papers": "SELECT wrong"})
        report = run_canary(
            StubEngine(), candidate, [record(["papers"])],
            tenant="mas", threshold=0.1, forced=True,
        )
        assert not report.passed and not report.blocked
        assert report.as_dict()["forced"] is True

    def test_empty_replay_set_passes(self):
        report = run_canary(
            StubEngine(), StubEngine(), [], tenant="mas", threshold=0.1
        )
        assert report.replayed == 0
        assert report.divergence == 0.0 and report.passed

    def test_matching_failures_count_as_agreement(self):
        report = run_canary(
            StubEngine(failing=True), StubEngine(failing=True),
            [record(["papers"])], tenant="mas", threshold=0.1,
        )
        assert report.replayed == 1 and report.mismatches == 0

    def test_one_sided_failure_is_a_mismatch(self):
        report = run_canary(
            StubEngine(), StubEngine(failing=True),
            [record(["papers"])], tenant="mas", threshold=0.1,
        )
        assert report.mismatches == 1 and report.blocked

    def test_score_shift_is_reported_not_gated(self):
        candidate = StubEngine(score=1.8)
        report = run_canary(
            StubEngine(score=0.2), candidate,
            [record(["papers"])] * 4, tenant="mas", threshold=0.5,
        )
        assert report.passed  # identical SQL either side
        assert report.score_shift == pytest.approx(1.0)

    def test_unreplayable_records_are_skipped(self):
        report = run_canary(
            StubEngine(), StubEngine(),
            [{"kind": "request", "nlq": None, "keywords": []},
             record(["papers"])],
            tenant="mas", threshold=0.1,
        )
        assert report.replayed == 1


class TestTailRequests:
    def write(self, directory, rows):
        journal = RequestJournal(directory, flush_interval=3600.0)
        for row in rows:
            assert journal.offer(row)
        journal.close()

    def request_row(self, ts, tenant="mas", nlq="papers"):
        return ("request", ts, tenant, nlq, None, None, 1.0, False,
                "v1", None)

    def test_tail_filters_tenant_and_keeps_the_newest(self, tmp_path):
        rows = [self.request_row(float(i), nlq=f"q{i}") for i in range(10)]
        rows.append(self.request_row(99.0, tenant="other", nlq="nope"))
        rows.append(("error", 100.0, "mas", "broken", None,
                     "TranslationError", 1.0, "v1"))
        self.write(tmp_path, rows)
        tail = tail_requests(tmp_path, "mas", 3)
        assert [r["nlq"] for r in tail] == ["q7", "q8", "q9"]
        assert tail_requests(tmp_path, "mas", 0) == []
        assert tail_requests(tmp_path, "missing", 5) == []

    def test_records_without_nlq_or_keywords_are_skipped(self, tmp_path):
        self.write(tmp_path, [
            ("request", 1.0, "mas", None, None, None, 1.0, False, "v1",
             None),
            self.request_row(2.0, nlq="real"),
        ])
        tail = tail_requests(tmp_path, "mas", 10)
        assert [r["nlq"] for r in tail] == ["real"]

    def test_canary_verdict_round_trips_through_the_journal(self, tmp_path):
        report = CanaryReport(
            tenant="mas", old_version="v1", new_version="v2",
            replayed=16, mismatches=12, divergence=0.75,
            score_shift=0.125, threshold=0.2, forced=False,
        )
        journal = RequestJournal(tmp_path, flush_interval=3600.0)
        assert journal.log_canary(report)
        journal.close()
        [row] = list(replay_journal(tmp_path))
        assert row["kind"] == "canary"
        assert row["divergence"] == 0.75
        assert row["passed"] is False and row["forced"] is False
        assert row["old_version"] == "v1" and row["new_version"] == "v2"


# ------------------------------------------- /slo over a live server


@pytest.fixture()
def slo_server(mini_db, mini_model, mini_log, tmp_path):
    from repro.core import Templar
    from repro.nlidb import PipelineNLIDB
    from repro.serving import TranslationService, make_server

    templar = Templar(mini_db, mini_model, mini_log)
    nlidb = PipelineNLIDB(mini_db, mini_model, templar)
    journal = RequestJournal(tmp_path / "journal", flush_interval=3600.0)
    service = TranslationService(
        nlidb, max_workers=2, journal=journal,
        slo=SLOPolicy(latency_p99_ms=5000.0, error_rate=0.5),
        drift_threshold=0.3,
    )
    http_server = make_server(service, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        service.close()
        journal.close()


def _get(server, path):
    port = server.server_address[1]
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


class TestSLOEndpoint:
    def test_slo_reports_the_configured_objectives(self, slo_server):
        status, content_type, body = _get(slo_server, "/slo")
        assert status == 200 and content_type.startswith("application/json")
        report = json.loads(body)
        assert report["configured"] is True
        names = {o["objective"] for o in report["objectives"]}
        assert names == {"latency_p99_ms", "error_rate"}
        assert report["healthy"] is True

    def test_scrape_carries_slo_and_drift_gauges(self, slo_server):
        _get(slo_server, "/slo")  # force an evaluation
        _, _, page = _get(slo_server, "/metrics")
        samples = parse_exposition(page.decode("utf-8"))
        assert "repro_slo_burn_rate" in samples
        assert "repro_slo_alert" in samples
        assert "repro_drift_score" in samples
        assert "repro_journal_queue_depth" in samples


class TestGatewayConfigCodec:
    def test_slo_and_canary_round_trip(self, tmp_path):
        from repro.gateway import GatewayConfig

        config = GatewayConfig.from_dict({
            "tenants": {"mas": {"engine": {"dataset": "mas"}}},
            "journal_dir": str(tmp_path),
            "slo": {"error_rate": 0.1, "burn_threshold": 4.0},
            "canary_requests": 32,
            "canary_divergence": 0.25,
        })
        assert config.slo == SLOPolicy(error_rate=0.1, burn_threshold=4.0)
        round_tripped = GatewayConfig.from_dict(config.to_dict())
        assert round_tripped.canary_requests == 32
        assert round_tripped.canary_divergence == 0.25
        assert round_tripped.slo == config.slo

    def test_canary_requires_a_journal(self):
        from repro.errors import ConfigError
        from repro.gateway import GatewayConfig

        with pytest.raises(ConfigError, match="journal"):
            GatewayConfig.from_dict({
                "tenants": {"mas": {"engine": {"dataset": "mas"}}},
                "canary_requests": 8,
            })
