"""The fuzz harness itself: determinism, mutators, shrinker, snapshot.

The expensive differential context is module-scoped and shared; the
cheap generator/shrinker/corpus properties run without any engines.
"""

import importlib.util
import json
import random
from pathlib import Path

import pytest

from repro.embedding.tokenize import word_tokens
from repro.fuzz import (
    ADVERSARIAL, PRESERVING, FuzzCase, FuzzContext, apply_mutation,
    build_pool, case_stream, load_corpus, run_fuzz, shrink_case,
    stream_digest, write_case,
)
from repro.fuzz.corpus import case_id, load_entry
from repro.fuzz.mutators import MUTATORS, synonym_map
from repro.fuzz.runner import emit_fuzz_snapshot

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def fuzz_context():
    with FuzzContext() as context:
        yield context


def _pools(context, seed):
    rng = random.Random(seed)
    return {
        name: build_pool(rng, name, ctx.dataset.usable_items())
        for name, ctx in sorted(context.workloads.items())
    }


# ------------------------------------------------------------ determinism


def test_same_seed_same_stream_byte_for_byte(fuzz_context):
    first = list(case_stream(7, 120, _pools(fuzz_context, 7)))
    second = list(case_stream(7, 120, _pools(fuzz_context, 7)))
    assert first == second
    assert stream_digest(first) == stream_digest(second)


def test_different_seeds_differ(fuzz_context):
    a = stream_digest(case_stream(1, 60, _pools(fuzz_context, 1)))
    b = stream_digest(case_stream(2, 60, _pools(fuzz_context, 2)))
    assert a != b


def test_mutation_application_is_salt_deterministic():
    for name in MUTATORS:
        first = apply_mutation(name, 1234, "number of papers after 2000")
        second = apply_mutation(name, 1234, "number of papers after 2000")
        assert first == second, name


# --------------------------------------------------------------- mutators


@pytest.mark.parametrize("name", PRESERVING)
def test_preserving_mutators_are_tokenization_invariant(name):
    """The preserving contract: word_tokens cannot see the mutation."""
    texts = [
        "papers", "John Smith", "after 2000", "number of papers",
        "VLDB  conference", "retail customer",
    ]
    for salt in range(30):
        for text in texts:
            mutated = apply_mutation(name, salt, text)
            assert word_tokens(mutated) == word_tokens(text), (
                f"{name}(salt={salt}) changed tokens: "
                f"{text!r} -> {mutated!r}"
            )


@pytest.mark.parametrize("name", ADVERSARIAL)
def test_adversarial_mutators_are_total(name):
    """Never crash, always return a string — even on hostile inputs."""
    synonyms = {"papers": ["articles"]}
    for salt in range(20):
        for text in ("", "x", "papers", "42", "a b c", "  ", "'"):
            assert isinstance(
                apply_mutation(name, salt, text, synonyms), str
            )


def test_synonym_mutator_uses_lexicon_pairs(fuzz_context):
    synonyms = fuzz_context.workloads["wide"].synonyms
    assert "customer" in synonyms
    mutated = apply_mutation(
        "synonym", 0, "retail customer", synonyms
    )
    assert mutated != "retail customer"


def test_trailing_punct_never_extends_numbers():
    """Guard for extract_number: only ? and ! — never '.' — get appended."""
    for salt in range(50):
        mutated = apply_mutation("trailing_punct", salt, "after 2000")
        assert mutated[-1] in "?!"


# ---------------------------------------------------------------- shrinker


def _toy_case(mutation_count=3, keywords=3, limit=10):
    return FuzzCase(
        case_id=0,
        workload="mas",
        item_id="mas-001",
        obscurity="Full",
        keywords=tuple(
            {"text": f"word{i} extra tail", "context": "SELECT"}
            for i in range(keywords)
        ),
        mutations=tuple(
            {"keyword": i % keywords, "mutator": "typo_dup", "salt": i}
            for i in range(mutation_count)
        ),
        limit=limit,
    )


def test_shrinker_minimizes_planted_violation():
    """Predicate: 'violates while any mutation remains' → 1-mutation min."""
    case = _toy_case()
    minimized, steps = shrink_case(case, lambda c: len(c.mutations) > 0)
    assert len(minimized.mutations) == 1
    assert len(minimized.keywords) == 1
    assert minimized.limit == 1
    assert all(
        len(str(k["text"]).split()) == 1 for k in minimized.keywords
    )
    assert steps > 0


def test_shrinker_is_deterministic():
    predicate = lambda c: len(c.mutations) > 0  # noqa: E731
    a, _ = shrink_case(_toy_case(), predicate)
    b, _ = shrink_case(_toy_case(), predicate)
    assert a == b


def test_shrinker_survives_crashing_predicate():
    """A probe that raises on some candidates must not abort the shrink."""

    def predicate(c):
        if c.limit == 1:
            raise RuntimeError("different failure while probing")
        return len(c.mutations) > 0

    minimized, _ = shrink_case(_toy_case(), predicate)
    assert len(minimized.mutations) == 1
    assert minimized.limit > 1  # the crashing simplification was rejected


# ------------------------------------------------------------------ corpus


def test_corpus_round_trip(tmp_path):
    case = _toy_case()
    path = write_case(tmp_path, "beam", case, note="planted", found="test")
    entry = load_entry(path)
    assert entry.case == case
    assert entry.oracle == "beam"
    assert entry.note == "planted"
    assert entry.path.name == f"beam-{case_id(case)}.json"
    assert load_corpus(tmp_path) == [entry]


def test_corpus_write_is_idempotent(tmp_path):
    case = _toy_case()
    first = write_case(tmp_path, "cache", case)
    second = write_case(tmp_path, "cache", case)
    assert first == second
    assert len(load_corpus(tmp_path)) == 1


def test_corpus_rejects_malformed(tmp_path):
    from repro.errors import ReproError

    bad = tmp_path / "beam-deadbeef.json"
    bad.write_text("{not json")
    with pytest.raises(ReproError):
        load_corpus(tmp_path)


# ------------------------------------------------- end-to-end + snapshot


def test_small_run_is_clean_and_reproducible(fuzz_context, tmp_path):
    report = run_fuzz(5, 25, context=fuzz_context, corpus_dir=tmp_path)
    assert report.violations == []
    assert report.crashes == 0
    assert report.cases == 25
    assert sorted(report.workload_counts) <= ["mas", "wide"]
    again = run_fuzz(5, 25, context=fuzz_context)
    assert again.digest == report.digest
    assert list(tmp_path.glob("*.json")) == []  # clean run, no repro files


def test_snapshot_emits_and_parses(fuzz_context, tmp_path):
    report = run_fuzz(11, 10, context=fuzz_context)
    path = emit_fuzz_snapshot(report, smoke=True, out_dir=tmp_path)
    assert path.name == "BENCH_fuzz.json"
    spec = importlib.util.spec_from_file_location(
        "snapshot_under_test", REPO_ROOT / "benchmarks" / "snapshot.py"
    )
    snapshot = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(snapshot)
    payload = snapshot.read_snapshot(path)
    assert payload["name"] == "fuzz"
    assert payload["headline"]["cases"] == 10
    assert payload["headline"]["violations"] == 0
    assert payload["config"]["digest"] == report.digest
    # Raw JSON also keeps the run identity for the trajectory.
    raw = json.loads(path.read_text())
    assert raw["config"]["seed"] == 11


def test_cli_fuzz_exits_zero_on_clean_run(tmp_path, capsys):
    from repro.cli import main

    code = main([
        "fuzz", "--seed", "2", "--cases", "8",
        "--workloads", "mas", "--no-snapshot",
    ])
    out = capsys.readouterr().out
    assert code == 0
    values = dict(
        line.split(None, 1) for line in out.splitlines() if line.strip()
    )
    assert values["violations"] == "0"
    assert values["crashes"] == "0"
    assert len(values["stream_digest"]) == 64
