"""Prometheus text exposition: rendering, escaping, strict re-parsing."""

from __future__ import annotations

import pytest

from repro.obs.prometheus import (
    EXPOSITION_CONTENT_TYPE,
    escape_label_value,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
)
from repro.serving.telemetry import MetricsRegistry


@pytest.fixture()
def registry() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.increment("requests", 3)
    metrics.increment("translate_errors", labels={"type": "ParseError"})
    metrics.record_latency("translate", 0.002)
    metrics.record_latency("translate", 0.040)
    return metrics


class TestRendering:
    def test_content_type_is_the_scrape_format(self):
        assert EXPOSITION_CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_page_round_trips_through_the_parser(self, registry):
        page = render_exposition([({}, registry)])
        samples = parse_exposition(page)
        assert samples["repro_requests_total"] == [({}, 3.0)]
        assert samples["repro_translate_errors_total"] == [
            ({"type": "ParseError"}, 1.0)
        ]
        counts = samples["repro_translate_latency_seconds_count"]
        assert counts == [({}, 2.0)]
        [(labels, total)] = samples["repro_translate_latency_seconds_sum"]
        assert total == pytest.approx(0.042)

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self, registry):
        page = render_exposition([({}, registry)])
        buckets = parse_exposition(page)["repro_translate_latency_seconds_bucket"]
        values = [value for _, value in buckets]
        assert values == sorted(values)  # cumulative => monotone
        assert values[-1] == 2.0
        assert buckets[-1][0]["le"] == "+Inf"

    def test_type_lines_precede_each_family(self, registry):
        page = render_exposition([({}, registry)])
        lines = page.splitlines()
        assert "# TYPE repro_requests_total counter" in lines
        assert "# TYPE repro_translate_latency_seconds histogram" in lines
        assert "# TYPE repro_uptime_seconds gauge" in lines

    def test_source_labels_stamp_every_sample(self, registry):
        other = MetricsRegistry()
        other.increment("requests", 7)
        page = render_exposition(
            [({"tenant": "mas"}, registry), ({"tenant": "yelp"}, other)]
        )
        by_tenant = {
            labels["tenant"]: value
            for labels, value in parse_exposition(page)["repro_requests_total"]
        }
        assert by_tenant == {"mas": 3.0, "yelp": 7.0}

    def test_dotted_counter_names_are_sanitized(self):
        metrics = MetricsRegistry()
        metrics.increment("tenant.b.requests")
        samples = parse_exposition(render_exposition([({}, metrics)]))
        assert "repro_tenant_b_requests_total" in samples


class TestEscaping:
    def test_label_values_escape_and_round_trip(self):
        hostile = 'quote " backslash \\ newline \n end'
        metrics = MetricsRegistry()
        metrics.increment("errors", labels={"message": hostile})
        page = render_exposition([({}, metrics)])
        [(labels, value)] = parse_exposition(page)["repro_errors_total"]
        assert labels["message"] == hostile
        assert value == 1.0

    def test_escape_label_value_covers_the_grammar(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("ok_name:sub") == "ok_name:sub"
        assert sanitize_metric_name("tenant.b.requests") == "tenant_b_requests"
        assert sanitize_metric_name("9lives") == "_9lives"


class TestStrictParser:
    def test_malformed_sample_line_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_exposition("this is not a sample\n")

    def test_malformed_labels_raise(self):
        with pytest.raises(ValueError, match="labels"):
            parse_exposition('metric{key=unquoted} 1\n')

    def test_comments_and_blank_lines_are_skipped(self):
        page = "# HELP something\n\n# TYPE x counter\nx_total 4\n"
        assert parse_exposition(page) == {"x_total": [({}, 4.0)]}
