"""Tests for the SQL tokenizer, parser and writer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import parse_query, write_query
from repro.sql.ast import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    FuncCall,
    InPredicate,
    IsNullPredicate,
    Literal,
    OpPlaceholder,
    OrPredicate,
    Star,
    Subquery,
    ValuePlaceholder,
    conjuncts,
)
from repro.sql.tokenizer import tokenize
from repro.sql.tokens import TokenKind


class TestTokenizer:
    def test_basic_statement(self):
        tokens = tokenize("SELECT a FROM t WHERE b = 1")
        kinds = [t.kind for t in tokens]
        assert kinds[-1] is TokenKind.EOF
        assert tokens[0].is_keyword("SELECT")

    def test_string_literal_with_escape(self):
        tokens = tokenize("SELECT 'O''Brien'")
        assert tokens[1].kind is TokenKind.STRING
        assert tokens[1].text == "O'Brien"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")

    def test_numbers(self):
        tokens = tokenize("SELECT 42, 3.14")
        assert tokens[1].text == "42"
        assert tokens[3].text == "3.14"

    def test_operators(self):
        tokens = tokenize("a <= b >= c <> d != e < f > g = h")
        ops = [t.text for t in tokens if t.kind is TokenKind.OPERATOR]
        assert ops == ["<=", ">=", "<>", "!=", "<", ">", "="]

    def test_placeholders(self):
        tokens = tokenize("a ?op ?val")
        assert [t.text for t in tokens if t.kind is TokenKind.PLACEHOLDER] == [
            "?op", "?val",
        ]

    def test_bare_question_mark_rejected(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a ? b")

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT $$$")

    def test_quoted_identifier(self):
        tokens = tokenize('SELECT `weird` FROM "quoted"')
        identifiers = [t.text for t in tokens if t.kind is TokenKind.IDENTIFIER]
        assert identifiers == ["weird", "quoted"]

    def test_trailing_semicolon_tolerated(self):
        tokens = tokenize("SELECT a FROM t;")
        assert tokens[-1].kind is TokenKind.EOF


class TestParser:
    def test_simple_select(self):
        query = parse_query("SELECT t.a FROM table1 t")
        assert query.select[0].expr == ColumnRef("t", "a")
        assert query.from_tables[0].table == "table1"
        assert query.from_tables[0].alias == "t"

    def test_paper_example(self):
        # The fragment example of Definition 3.
        query = parse_query(
            "SELECT t.a FROM table1 t, table2 u "
            "WHERE t.b = 15 AND t.id = u.id"
        )
        parts = query.where_conjuncts()
        assert len(parts) == 2
        assert parts[0] == Comparison(ColumnRef("t", "b"), "=", Literal(15))

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM t").distinct

    def test_star(self):
        query = parse_query("SELECT * FROM t")
        assert query.select[0].expr == Star()

    def test_qualified_star(self):
        query = parse_query("SELECT t.* FROM t")
        assert query.select[0].expr == Star("t")

    def test_aggregates(self):
        query = parse_query("SELECT COUNT(DISTINCT t.a), MAX(b) FROM t")
        count = query.select[0].expr
        assert isinstance(count, FuncCall)
        assert count.name == "COUNT" and count.distinct

    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM t")
        expr = query.select[0].expr
        assert isinstance(expr, FuncCall) and expr.args == (Star(),)

    def test_explicit_join_normalized(self):
        query = parse_query(
            "SELECT a FROM t JOIN u ON t.id = u.id WHERE u.b = 1"
        )
        assert len(query.from_tables) == 2
        assert len(query.where_conjuncts()) == 2

    def test_left_join_normalized(self):
        query = parse_query("SELECT a FROM t LEFT OUTER JOIN u ON t.id = u.id")
        assert len(query.from_tables) == 2

    def test_group_by_having(self):
        query = parse_query(
            "SELECT a, COUNT(b) FROM t GROUP BY a HAVING COUNT(b) > 2"
        )
        assert query.group_by == (ColumnRef(None, "a"),)
        assert isinstance(query.having, Comparison)

    def test_order_by_directions(self):
        query = parse_query("SELECT a FROM t ORDER BY a ASC, b DESC")
        assert not query.order_by[0].descending
        assert query.order_by[1].descending

    def test_limit(self):
        assert parse_query("SELECT a FROM t LIMIT 5").limit == 5

    def test_in_list(self):
        query = parse_query("SELECT a FROM t WHERE b IN (1, 2, 3)")
        predicate = query.where_conjuncts()[0]
        assert isinstance(predicate, InPredicate)
        assert len(predicate.values) == 3

    def test_not_in(self):
        query = parse_query("SELECT a FROM t WHERE b NOT IN (1)")
        assert query.where_conjuncts()[0].negated

    def test_between(self):
        query = parse_query("SELECT a FROM t WHERE b BETWEEN 1 AND 5")
        predicate = query.where_conjuncts()[0]
        assert isinstance(predicate, BetweenPredicate)
        assert predicate.low == Literal(1) and predicate.high == Literal(5)

    def test_like(self):
        query = parse_query("SELECT a FROM t WHERE b LIKE '%x%'")
        assert query.where_conjuncts()[0].op == "LIKE"

    def test_not_like(self):
        query = parse_query("SELECT a FROM t WHERE b NOT LIKE 'x'")
        assert query.where_conjuncts()[0].op == "NOT LIKE"

    def test_is_null_and_not_null(self):
        query = parse_query("SELECT a FROM t WHERE b IS NULL AND c IS NOT NULL")
        first, second = query.where_conjuncts()
        assert isinstance(first, IsNullPredicate) and not first.negated
        assert second.negated

    def test_or_precedence(self):
        query = parse_query("SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3")
        # AND binds tighter: (a AND b) OR c → a single OR at the top.
        assert isinstance(query.where, OrPredicate)

    def test_parenthesized_boolean(self):
        query = parse_query("SELECT a FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        parts = query.where_conjuncts()
        assert len(parts) == 2
        assert isinstance(parts[1], OrPredicate)

    def test_subquery_expression(self):
        query = parse_query(
            "SELECT a FROM t WHERE b = (SELECT MAX(b) FROM t)"
        )
        predicate = query.where_conjuncts()[0]
        assert isinstance(predicate.right, Subquery)

    def test_in_subquery(self):
        query = parse_query(
            "SELECT a FROM t WHERE b IN (SELECT b FROM u)"
        )
        predicate = query.where_conjuncts()[0]
        assert isinstance(predicate.values[0], Subquery)

    def test_obscured_placeholders(self):
        query = parse_query("SELECT a FROM t WHERE t.b ?op ?val")
        predicate = query.where_conjuncts()[0]
        assert isinstance(predicate.op, OpPlaceholder)
        assert predicate.right == ValuePlaceholder("val")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT a FROM t garbage !")

    def test_missing_from_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT a")

    def test_conjuncts_flattening(self):
        query = parse_query(
            "SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3 AND d = 4"
        )
        assert len(conjuncts(query.where)) == 4


class TestWriterRoundTrip:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT t.a FROM table1 t",
            "SELECT DISTINCT a FROM t",
            "SELECT COUNT(DISTINCT t.a) FROM t",
            "SELECT a FROM t WHERE b = 'x' AND c > 3",
            "SELECT a FROM t WHERE b IN (1, 2)",
            "SELECT a FROM t WHERE b BETWEEN 1 AND 2",
            "SELECT a FROM t WHERE b IS NOT NULL",
            "SELECT a FROM t WHERE b LIKE '%x%'",
            "SELECT a, COUNT(b) FROM t GROUP BY a HAVING COUNT(b) > 2",
            "SELECT a FROM t ORDER BY a DESC LIMIT 3",
            "SELECT a FROM t WHERE t.b ?op ?val",
            "SELECT a FROM t WHERE b = (SELECT MAX(b) FROM t)",
        ],
    )
    def test_parse_write_parse_fixpoint(self, sql):
        """write(parse(x)) must itself parse to the same AST."""
        first = parse_query(sql)
        written = write_query(first)
        second = parse_query(written)
        assert first == second

    def test_string_escaping_round_trip(self):
        query = parse_query("SELECT a FROM t WHERE b = 'O''Brien'")
        written = write_query(query)
        assert "O''Brien" in written
        assert parse_query(written) == query
