"""Tests for the extensions: session-aware QFG and Dempster-Shafer."""

import pytest

from repro.core.dempster import (
    Belief,
    belief_from_dice,
    belief_from_similarity,
    combine_beliefs,
    dempster_score,
)
from repro.core.fragments import fragments_of_sql
from repro.core.sessions import SessionLog, SessionQFG
from repro.errors import ReproError


class TestSessionLog:
    def test_grouping(self):
        log = SessionLog()
        log.add("s1", "SELECT a FROM t")
        log.add("s2", "SELECT b FROM t")
        log.add("s1", "SELECT c FROM t")
        sessions = log.sessions()
        assert len(sessions["s1"]) == 2
        assert len(sessions["s2"]) == 1

    def test_blank_statements_skipped(self):
        log = SessionLog()
        log.add("s1", "   ")
        assert len(log) == 0


class TestSessionQFG:
    def test_cross_query_co_occurrence(self, mini_db):
        """Fragments of different queries in one session gain affinity."""
        log = SessionLog()
        log.add("s1", "SELECT title FROM publication WHERE year > 2000")
        log.add("s1", "SELECT name FROM journal")
        qfg = SessionQFG.from_session_log(
            log, mini_db.catalog, session_weight=0.5
        )
        cross = qfg.ne("SELECT::publication.title", "SELECT::journal.name")
        assert cross == pytest.approx(0.5)

    def test_plain_qfg_has_no_cross_affinity(self, mini_db, mini_log):
        plain = mini_log.build_qfg(mini_db.catalog)
        assert plain.ne("SELECT::journal.name", "SELECT::publication.title") == 0

    def test_window_limits_reach(self, mini_db):
        log = SessionLog()
        statements = [
            "SELECT title FROM publication",
            "SELECT name FROM journal",
            "SELECT name FROM author",
        ]
        for sql in statements:
            log.add("s1", sql)
        qfg = SessionQFG.from_session_log(
            log, mini_db.catalog, window=1
        )
        # publication (1st) and author (3rd) are outside the window of 1.
        assert qfg.ne("SELECT::publication.title", "SELECT::author.name") == 0
        assert qfg.ne("SELECT::publication.title", "SELECT::journal.name") > 0

    def test_within_query_counts_unscaled(self, mini_db):
        log = SessionLog()
        log.add("s1", "SELECT title FROM publication WHERE year > 2000")
        qfg = SessionQFG.from_session_log(log, mini_db.catalog)
        assert (
            qfg.ne("SELECT::publication.title", "WHERE::publication.year ?op ?val")
            == 1
        )

    def test_dice_boost_from_sessions(self, mini_db):
        log = SessionLog()
        for session in ("s1", "s2", "s3"):
            log.add(session, "SELECT title FROM publication WHERE year > 2000")
            log.add(session, "SELECT name FROM journal")
        qfg = SessionQFG.from_session_log(log, mini_db.catalog)
        assert qfg.dice("SELECT::publication.title", "SELECT::journal.name") > 0

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            SessionQFG(session_weight=2.0)
        with pytest.raises(ReproError):
            SessionQFG(window=0)

    def test_unparseable_statements_skipped(self, mini_db):
        log = SessionLog()
        log.add("s1", "NOT SQL")
        log.add("s1", "SELECT title FROM publication")
        qfg = SessionQFG.from_session_log(log, mini_db.catalog)
        assert qfg.total_queries == 1


class TestDempster:
    def test_belief_validation(self):
        with pytest.raises(ReproError):
            Belief(0.8, 0.5)
        with pytest.raises(ReproError):
            Belief(-0.1)

    def test_ignorance_complement(self):
        belief = Belief(0.6, 0.2)
        assert belief.ignorance == pytest.approx(0.2)

    def test_combination_with_vacuous_is_identity_like(self):
        vacuous = Belief(0.0, 0.0)
        evidence = Belief(0.6, 0.1)
        combined = combine_beliefs(evidence, vacuous)
        assert combined.support == pytest.approx(evidence.support)
        assert combined.against == pytest.approx(evidence.against)

    def test_agreement_reinforces(self):
        a = Belief(0.6, 0.0)
        b = Belief(0.5, 0.0)
        combined = combine_beliefs(a, b)
        assert combined.support > max(a.support, b.support)

    def test_commutative(self):
        a = Belief(0.6, 0.1)
        b = Belief(0.3, 0.2)
        ab = combine_beliefs(a, b)
        ba = combine_beliefs(b, a)
        assert ab.support == pytest.approx(ba.support)
        assert ab.against == pytest.approx(ba.against)

    def test_total_conflict_raises(self):
        with pytest.raises(ReproError):
            combine_beliefs(Belief(1.0, 0.0), Belief(0.0, 1.0))

    def test_dempster_score_monotone_in_both_sources(self):
        low = dempster_score(0.3, 0.1)
        higher_sigma = dempster_score(0.6, 0.1)
        higher_dice = dempster_score(0.3, 0.5)
        assert higher_sigma > low
        assert higher_dice > low

    def test_score_bounds(self):
        for sigma in (0.0, 0.5, 1.0):
            for dice in (0.0, 0.5, 1.0):
                assert 0.0 <= dempster_score(sigma, dice) <= 1.0

    def test_helper_beliefs_valid(self):
        assert belief_from_similarity(0.7).support <= 0.9
        assert belief_from_dice(0.4).ignorance > 0
