"""Regression: killing a server mid-stream must not lose observed queries.

Both ``repro serve`` and ``repro gateway`` acknowledge ``observe``
requests before the QFG absorbs them; a SIGTERM (the normal supervisor
stop signal) arriving with observations still queued must flush them
into the graph before the process exits.  These tests run the real CLI
in a subprocess, stream observations at it, kill it, and assert the
flush happened — the shutdown message is printed only after
``engine.close()``/``gateway.close()`` absorbed the queue.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

_ENDPOINT_RE = re.compile(r"http://127\.0\.0\.1:(\d+)/")


def _spawn(args: list[str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


def _await_port(proc: subprocess.Popen, timeout: float = 120.0) -> int:
    """Port parsed from the CLI's startup banner (``--port 0`` = ephemeral)."""
    deadline = time.time() + timeout
    lines = []
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited during startup:\n{''.join(lines)}"
            )
        lines.append(line)
        match = _ENDPOINT_RE.search(line)
        if match:
            return int(match.group(1))
    raise AssertionError(f"no endpoint line within {timeout}s:\n{''.join(lines)}")


def _post(port: int, path: str, payload: dict) -> int:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status


def _terminate_and_collect(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        output, _ = proc.communicate()
        pytest.fail("server did not exit within 60s of SIGTERM")
    return output


@pytest.mark.slow
def test_sigterm_flushes_pending_observations_serve():
    # learn batch far above the traffic: nothing auto-drains, so every
    # observation is still queued when the kill arrives.
    proc = _spawn(["serve", "--dataset", "mas", "--port", "0",
                   "--learn-batch", "500"])
    try:
        port = _await_port(proc)
        for _ in range(3):
            status = _post(port, "/translate", {
                "nlq": "return the papers after 2000", "observe": True,
            })
            assert status == 200
        output = _terminate_and_collect(proc)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, output
    # The acknowledged observations reached the QFG, not the floor.
    assert "flushed 3 pending observation(s) into the QFG" in output, output


@pytest.mark.slow
def test_sigterm_flushes_pending_observations_gateway(tmp_path):
    config = {
        "tenants": {"mas": {"engine": {"dataset": "mas"}}},
        # Scheduler present (observe is accepted) but never fires in-test.
        "learn_interval_seconds": 3600.0,
    }
    config_path = tmp_path / "gateway.json"
    config_path.write_text(json.dumps(config))
    proc = _spawn(["gateway", "--config", str(config_path), "--port", "0"])
    try:
        port = _await_port(proc)
        # The listener is up before the engines; wait for readiness.
        deadline = time.time() + 120
        while time.time() < deadline:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/readyz", timeout=5
                ) as response:
                    if response.status == 200:
                        break
            except urllib.error.HTTPError:
                pass
            time.sleep(0.2)
        for _ in range(2):
            status = _post(port, "/t/mas/translate", {
                "nlq": "return the papers after 2000", "observe": True,
            })
            assert status == 200
        output = _terminate_and_collect(proc)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, output
    assert "flushed 2 pending observation(s) into the QFG" in output, output
