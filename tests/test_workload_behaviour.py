"""Integration tests: per-family behaviour classes on the benchmarks.

Each workload family is designed as baseline-winnable (B),
Templar-winnable (T) or hard (H) — see the workload modules.  These tests
pin the designed behaviour on one cross-validation trial per dataset, so
a regression in the mapper/joiner shows up as a family flipping class.
"""

import pytest

from repro.core import QueryLog, Templar
from repro.embedding import CompositeModel
from repro.eval.folds import split_folds, train_test_split
from repro.eval.metrics import fq_correct
from repro.nlidb import PipelineNLIDB


def run_trial(dataset, families):
    """Translate fold-0 items of the given families with both systems."""
    items = dataset.usable_items()
    folds = split_folds(items, 4, 17)
    train, test = train_test_split(folds, 0)
    log = QueryLog([item.gold_sql for item in train])
    model = CompositeModel(dataset.lexicon)
    templar = Templar(dataset.database, model, log)
    baseline = PipelineNLIDB(dataset.database, model, None)
    augmented = PipelineNLIDB(dataset.database, model, templar)
    catalog = dataset.database.catalog

    outcomes = {}
    for item in test:
        if item.family not in families:
            continue
        base_ok = fq_correct(item, baseline.translate(item.keywords), catalog)
        plus_ok = fq_correct(item, augmented.translate(item.keywords), catalog)
        outcomes.setdefault(item.family, []).append((base_ok, plus_ok))
    return outcomes


def rate(pairs, index):
    return sum(p[index] for p in pairs) / len(pairs)


class TestMasBehaviour:
    @pytest.fixture(scope="class")
    def outcomes(self, mas_dataset):
        return run_trial(
            mas_dataset,
            families={
                # T: the calibrated confusion (papers ~ journal) families
                "papers_by_author", "papers_in_conference",
                "papers_in_domain", "papers_after_year",
                # B: unambiguous families
                "authors_of_paper", "organization_of_author",
                "abstract_of_paper",
                # H: hard families
                "papers_citing_title", "papers_between_years",
                "papers_same_venue_as",
            },
        )

    def test_templar_families_flip(self, outcomes):
        for family in (
            "papers_by_author", "papers_in_conference",
            "papers_in_domain", "papers_after_year",
        ):
            pairs = outcomes.get(family)
            if not pairs:
                continue
            assert rate(pairs, 0) == 0.0, f"{family}: baseline should fail"
            assert rate(pairs, 1) == 1.0, f"{family}: Pipeline+ should win"

    def test_baseline_families_hold(self, outcomes):
        for family in (
            "authors_of_paper", "organization_of_author", "abstract_of_paper",
        ):
            pairs = outcomes.get(family)
            if not pairs:
                continue
            assert rate(pairs, 0) == 1.0, f"{family}: baseline should win"
            assert rate(pairs, 1) == 1.0, f"{family}: Pipeline+ must not regress"

    def test_hard_families_cap_everyone(self, outcomes):
        for family in (
            "papers_citing_title", "papers_between_years",
            "papers_same_venue_as",
        ):
            pairs = outcomes.get(family)
            if not pairs:
                continue
            assert rate(pairs, 0) == 0.0, f"{family}: baseline"
            assert rate(pairs, 1) == 0.0, f"{family}: Pipeline+"


class TestYelpBehaviour:
    @pytest.fixture(scope="class")
    def outcomes(self, yelp_dataset):
        return run_trial(
            yelp_dataset,
            families={
                "avg_rating_of_business", "reviews_rating_above",
                "businesses_in_city", "tips_for_business",
                "reviews_in_month", "open_businesses_in_city",
            },
        )

    def test_rating_ambiguity_is_templar_win(self, outcomes):
        for family in ("avg_rating_of_business", "reviews_rating_above"):
            pairs = outcomes.get(family)
            if not pairs:
                continue
            assert rate(pairs, 0) == 0.0, family
            assert rate(pairs, 1) == 1.0, family

    def test_unambiguous_families_hold(self, outcomes):
        for family in ("businesses_in_city", "tips_for_business"):
            pairs = outcomes.get(family)
            if not pairs:
                continue
            assert rate(pairs, 0) == 1.0, family
            assert rate(pairs, 1) == 1.0, family

    def test_hard_families(self, outcomes):
        for family in ("reviews_in_month", "open_businesses_in_city"):
            pairs = outcomes.get(family)
            if not pairs:
                continue
            assert rate(pairs, 1) == 0.0, family


class TestImdbBehaviour:
    @pytest.fixture(scope="class")
    def outcomes(self, imdb_dataset):
        return run_trial(
            imdb_dataset,
            families={
                "films_by_director", "films_in_genre",
                "actors_in_series_tagged",
                "actors_in_film", "directors_of_film",
                "films_of_director_of", "films_between_years",
            },
        )

    def test_film_confusion_is_templar_win(self, outcomes):
        for family in ("films_by_director", "films_in_genre"):
            pairs = outcomes.get(family)
            if not pairs:
                continue
            assert rate(pairs, 0) == 0.0, family
            assert rate(pairs, 1) == 1.0, family

    def test_logjoin_family(self, outcomes):
        """actors_in_series_tagged is won purely by log-driven joins."""
        pairs = outcomes.get("actors_in_series_tagged")
        if pairs:
            assert rate(pairs, 0) == 0.0
            assert rate(pairs, 1) == 1.0

    def test_unambiguous_families_hold(self, outcomes):
        for family in ("actors_in_film", "directors_of_film"):
            pairs = outcomes.get(family)
            if not pairs:
                continue
            assert rate(pairs, 0) >= 0.99, family

    def test_hard_families(self, outcomes):
        for family in ("films_of_director_of", "films_between_years"):
            pairs = outcomes.get(family)
            if not pairs:
                continue
            assert rate(pairs, 1) == 0.0, family
