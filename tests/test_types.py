"""Unit tests for repro.db.types: coercion, comparison, LIKE."""

import pytest

from repro.db.types import ColumnType, coerce_value, compare_values, like_match
from repro.errors import DataError


class TestCoercion:
    def test_none_passes_through_all_types(self):
        for column_type in ColumnType:
            assert coerce_value(None, column_type) is None

    def test_integer_from_int(self):
        assert coerce_value(42, ColumnType.INTEGER) == 42

    def test_integer_from_numeric_string(self):
        assert coerce_value("42", ColumnType.INTEGER) == 42

    def test_integer_from_integral_float(self):
        assert coerce_value(42.0, ColumnType.INTEGER) == 42

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(DataError):
            coerce_value(42.5, ColumnType.INTEGER)

    def test_integer_rejects_text(self):
        with pytest.raises(DataError):
            coerce_value("hello", ColumnType.INTEGER)

    def test_float_from_int(self):
        assert coerce_value(3, ColumnType.FLOAT) == 3.0

    def test_float_from_string(self):
        assert coerce_value("3.5", ColumnType.FLOAT) == 3.5

    def test_float_rejects_text(self):
        with pytest.raises(DataError):
            coerce_value("pi", ColumnType.FLOAT)

    def test_text_stringifies_numbers(self):
        assert coerce_value(7, ColumnType.TEXT) == "7"

    def test_text_keeps_strings(self):
        assert coerce_value("abc", ColumnType.TEXT) == "abc"

    def test_bool_coerces_to_int(self):
        assert coerce_value(True, ColumnType.INTEGER) == 1

    def test_is_numeric_property(self):
        assert ColumnType.INTEGER.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.TEXT.is_numeric


class TestCompareValues:
    @pytest.mark.parametrize(
        "left,op,right,expected",
        [
            (5, "=", 5, True),
            (5, "=", 6, False),
            (5, "!=", 6, True),
            (5, "<>", 6, True),
            (5, "<", 6, True),
            (6, "<=", 6, True),
            (7, ">", 6, True),
            (6, ">=", 7, False),
            ("abc", "=", "abc", True),
            ("abc", "<", "abd", True),
        ],
    )
    def test_basic_comparisons(self, left, op, right, expected):
        assert compare_values(left, right, op) is expected

    def test_null_comparisons_are_false(self):
        assert not compare_values(None, 5, "=")
        assert not compare_values(5, None, "=")
        assert not compare_values(None, None, "=")

    def test_numeric_string_vs_number(self):
        assert compare_values(5, "5", "=")
        assert compare_values("2004", 2000, ">")

    def test_non_numeric_string_vs_number_is_false(self):
        assert not compare_values("abc", 5, "=")
        assert not compare_values("abc", 5, "<")

    def test_int_float_cross_comparison(self):
        assert compare_values(5, 5.0, "=")
        assert compare_values(5.5, 5, ">")

    def test_unknown_operator_raises(self):
        with pytest.raises(DataError):
            compare_values(1, 2, "~")


class TestLikeMatch:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "HELLO", True),  # case-insensitive like MySQL
            ("hello", "h%", True),
            ("hello", "%o", True),
            ("hello", "%ell%", True),
            ("hello", "h_llo", True),
            ("hello", "h_lo", False),
            ("hello", "%", True),
            ("", "%", True),
            ("", "_", False),
            ("abc", "a%c", True),
            ("abc", "a%b", False),
            ("aXbXc", "a%b%c", True),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert like_match(value, pattern) is expected

    def test_null_never_matches(self):
        assert not like_match(None, "%")

    def test_numbers_match_textually(self):
        assert like_match(2004, "20%")

    def test_consecutive_percent_collapse(self):
        assert like_match("abc", "a%%c")
