"""Self-analytics: the NLIDB answers NLQs over its own serving journal."""

from __future__ import annotations

import datetime
import json
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import Engine, EngineConfig
from repro.core.log import QueryLog
from repro.errors import JournalError, ReproError
from repro.obs.selfquery import (
    TELEMETRY_QUERY_LOG,
    SelfQueryService,
    build_selfquery_engine,
    build_telemetry_dataset,
    load_telemetry_database,
    normalize_nlq,
    telemetry_catalog,
)

TODAY = datetime.date(2026, 8, 7)


def _sample_records():
    day = TODAY.isoformat()

    def req(tenant, nlq, ts, latency, sql="SELECT 1", hit=False):
        return {
            "kind": "request", "ts": ts, "day": day, "tenant": tenant,
            "nlq": nlq, "keywords": [], "sql": sql, "config_score": 1.0,
            "join_score": 1.0, "latency_ms": latency, "cache_hit": hit,
            "artifact_version": None, "trace_id": None,
        }

    return [
        req("mas", "return the papers", 100.0, 12.0),
        req("mas", "return the authors", 101.0, 3.0, hit=True),
        req("yelp", "return the businesses", 102.0, 48.0),
        {
            "kind": "error", "ts": 103.0, "day": day, "tenant": "yelp",
            "nlq": "%%%", "keywords": [], "error_type": "TranslationError",
            "latency_ms": 1.5, "artifact_version": None,
        },
        {
            "kind": "reload", "ts": 104.0, "day": day, "tenant": "mas",
            "old_version": "a1", "new_version": "b2",
            "carried_observations": 2, "build_ms": 400.0,
        },
    ]


class TestNormalizeNLQ:
    def test_slowest_becomes_descending_latency_order(self):
        assert (
            normalize_nlq("slowest tenant today", today=TODAY)
            == "tenant '2026-08-07' ordered by highest latency"
        )

    def test_yesterday_becomes_a_quoted_iso_date(self):
        assert "'2026-08-06'" in normalize_nlq("requests yesterday",
                                               today=TODAY)

    def test_failures_become_errors(self):
        assert normalize_nlq("number of failures") == "number of errors"
        assert normalize_nlq("failed requests") == "errors requests"

    def test_plain_questions_pass_through(self):
        assert normalize_nlq("number of requests") == "number of requests"


class TestTelemetrySchema:
    def test_journal_records_load_into_the_database(self):
        database = load_telemetry_database(_sample_records())
        count = database.execute("SELECT COUNT(t1.rid) FROM requests t1")
        assert count.rows[0][0] == 3
        tenants = database.execute("SELECT t1.name FROM tenants t1")
        assert sorted(row[0] for row in tenants.rows) == ["mas", "yelp"]
        errors = database.execute("SELECT COUNT(t1.eid) FROM errors t1")
        assert errors.rows[0][0] == 1
        reloads = database.execute(
            "SELECT t1.new_version FROM reloads t1"
        )
        assert reloads.rows[0][0] == "b2"

    def test_curated_query_log_parses_cleanly(self):
        """Every seeded telemetry statement must contribute QFG mass."""
        dataset = build_telemetry_dataset(_sample_records())
        log = QueryLog(list(TELEMETRY_QUERY_LOG))
        qfg = log.build_qfg(dataset.database.catalog)
        assert qfg.total_queries == len(TELEMETRY_QUERY_LOG)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def journal_dir(self, tmp_path_factory):
        """A journal written by a real engine serving real requests."""
        jdir = tmp_path_factory.mktemp("journal")
        with Engine.from_config(
            EngineConfig(dataset="mas", journal_dir=str(jdir)),
            journal_tenant="mas",
        ) as engine:
            engine.translate("return the papers after 2000")
            engine.translate("return the papers after 2000")  # cache hit
            engine.translate("return all the authors")
        return jdir

    def test_the_engine_translates_questions_about_itself(self, journal_dir):
        engine = build_selfquery_engine(journal_dir)
        try:
            response = engine.translate("number of requests")
            assert response.sql == "SELECT COUNT(t1.nlq) FROM requests t1"
            answer = engine.dataset.database.execute(response.sql)
            assert answer.rows[0][0] == 3
        finally:
            engine.close()

    def test_slowest_tenant_today_names_the_tenant(self, journal_dir):
        service = SelfQueryService(journal_dir)
        try:
            result = service.query("slowest tenant today")
        finally:
            service.close()
        assert "ORDER BY" in result["sql"] and "DESC" in result["sql"]
        assert "latency_ms" in result["sql"]
        assert result["rows"][0] == ["mas"]

    def test_query_envelope_truncates_but_reports_full_count(
        self, journal_dir
    ):
        service = SelfQueryService(journal_dir)
        try:
            result = service.query("return the requests", limit=2)
        finally:
            service.close()
        assert result["row_count"] == 3
        assert len(result["rows"]) == 2
        assert result["truncated"] is True

    def test_unanswerable_question_raises_a_repro_error(self, journal_dir):
        """Off-telemetry questions fail with a mapped ReproError (→ 422)."""
        service = SelfQueryService(journal_dir)
        try:
            with pytest.raises(ReproError, match="could not parse"):
                service.query("what is the airspeed of an unladen swallow")
        finally:
            service.close()

    def test_service_rebuilds_when_the_journal_grows(self, tmp_path):
        from repro.obs.journal import RequestJournal

        jdir = tmp_path / "journal"
        journal = RequestJournal(jdir)
        try:
            journal.offer((
                "request", 100.0, "mas", "q1", [], None, 5.0, False, None,
                None,
            ))
            service = SelfQueryService(jdir, journal=journal)
            assert service.query("number of requests")["rows"] == [[1]]
            journal.offer((
                "request", 101.0, "mas", "q2", [], None, 5.0, False, None,
                None,
            ))
            # The pending record is flushed and the engine rebuilt on the
            # next query; no restart, no manual invalidation.
            assert service.query("number of requests")["rows"] == [[2]]
            service.close()
        finally:
            journal.close()

    def test_empty_journal_raises_journal_error(self, tmp_path):
        with pytest.raises(JournalError, match="no records"):
            build_selfquery_engine(tmp_path / "empty")


class TestPersistenceAcrossRestart:
    def test_journal_survives_the_serving_process(self, tmp_path):
        """Serve in one process, self-query from a fresh one (the CLI)."""
        jdir = tmp_path / "journal"
        serve_script = (
            "from repro.api import Engine, EngineConfig\n"
            f"config = EngineConfig(dataset='mas', journal_dir={str(jdir)!r})\n"
            "with Engine.from_config(config) as engine:\n"
            "    engine.translate('return the papers after 2000')\n"
            "    engine.translate('return all the authors')\n"
        )
        src = str(Path(__file__).parent.parent / "src")
        for args, stdin in (
            ([sys.executable, "-c", serve_script], None),
            ([sys.executable, "-m", "repro.cli", "logs", "query",
              "--journal", str(jdir), "--nlq", "number of requests"], None),
        ):
            completed = subprocess.run(
                args, capture_output=True, text=True, timeout=300,
                env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            )
            assert completed.returncode == 0, completed.stderr
        assert "SELECT COUNT(t1.nlq) FROM requests t1" in completed.stdout
        assert "2" in completed.stdout.split("sql")[-1]


def _get(port: int, path: str):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}"
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHTTPSelfQuery:
    @pytest.fixture()
    def journaled_server(self, tmp_path):
        from repro.serving import make_server

        engine = Engine.from_config(
            EngineConfig(dataset="mas", journal_dir=str(tmp_path / "j"))
        )
        server = make_server(engine=engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield engine, server.server_address[1]
        finally:
            server.shutdown()
            server.server_close()
            engine.close()

    def test_admin_logs_query_round_trip(self, journaled_server):
        engine, port = journaled_server
        engine.translate("return the papers after 2000")
        engine.translate("return all the authors")
        status, body = _get(port, "/admin/logs/query?nlq=number+of+requests")
        assert status == 200, body
        assert body["sql"] == "SELECT COUNT(t1.nlq) FROM requests t1"
        assert body["rows"] == [[2]]
        # The SQL the endpoint returned really executes over the journal.
        selfquery = SelfQueryService(engine.journal.directory)
        try:
            direct = selfquery.engine().dataset.database.execute(body["sql"])
        finally:
            selfquery.close()
        assert [list(row) for row in direct.rows] == body["rows"]

    def test_limit_parameter_caps_rows(self, journaled_server):
        engine, port = journaled_server
        for _ in range(3):
            engine.translate("return the papers after 2000")
        status, body = _get(
            port, "/admin/logs/query?nlq=return+the+requests&limit=1"
        )
        assert status == 200
        assert len(body["rows"]) == 1
        assert body["row_count"] == 3 and body["truncated"] is True
        status, body = _get(
            port, "/admin/logs/query?nlq=return+the+requests&limit=zero"
        )
        assert status == 400
        assert "integer" in body["error"]

    def test_missing_nlq_is_400(self, journaled_server):
        _, port = journaled_server
        status, body = _get(port, "/admin/logs/query")
        assert status == 400
        assert "nlq" in body["error"]

    def test_unjournaled_server_is_400(self):
        from repro.serving import make_server

        engine = Engine.from_config(EngineConfig(dataset="mas"))
        server = make_server(engine=engine, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _get(port, "/admin/logs/query?nlq=x")
            assert status == 400
            assert "journal" in body["error"]
        finally:
            server.shutdown()
            server.server_close()
            engine.close()

    def test_empty_journal_is_422(self, journaled_server):
        _, port = journaled_server
        status, body = _get(port, "/admin/logs/query?nlq=number+of+requests")
        assert status == 422
        assert "no records" in body["error"]


class TestTelemetryCatalogShape:
    def test_latency_lives_only_on_requests(self):
        """'average latency' must map to requests, never to errors."""
        catalog = telemetry_catalog()
        assert catalog.tables["requests"].has_column("latency_ms")
        assert not catalog.tables["errors"].has_column("latency_ms")
