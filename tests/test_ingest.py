"""Tests for the ingest subsystem: reader, merge algebra, sharding,
parallel pipeline, checkpoint resume, and the synthetic log generator."""

from __future__ import annotations

import json

import pytest

from repro.core import QueryLog
from repro.core.fragments import Obscurity, fragments_of_sql
from repro.core.qfg import QueryFragmentGraph
from repro.core.sessions import SessionLog, SessionQFG
from repro.datasets.loggen import SyntheticLogGenerator, write_synthetic_log
from repro.errors import IngestInterrupted, ReproError
from repro.ingest import (
    dedup_statements,
    ingest_log,
    ingest_session_log,
    is_line_per_statement,
    iter_statements,
    normalize_statement,
    shard_entries,
    shard_sessions,
)


def read(text: str) -> list[str]:
    return list(iter_statements(text.splitlines()))


class TestReader:
    def test_line_per_statement(self):
        assert read("SELECT a FROM t\nSELECT b FROM t\n") == [
            "SELECT a FROM t",
            "SELECT b FROM t",
        ]

    def test_trailing_semicolons(self):
        assert read("SELECT a FROM t;\nSELECT b FROM t;") == [
            "SELECT a FROM t",
            "SELECT b FROM t",
        ]

    def test_multiple_statements_one_line(self):
        assert read("SELECT a FROM t; SELECT b FROM t") == [
            "SELECT a FROM t",
            "SELECT b FROM t",
        ]

    def test_multi_line_statement_blank_separated(self):
        text = "SELECT a\nFROM t\nWHERE x > 1\n\nSELECT b\nFROM u\n"
        assert read(text) == [
            "SELECT a FROM t WHERE x > 1",
            "SELECT b FROM u",
        ]

    def test_keyword_starts_new_statement_without_separator(self):
        text = "SELECT a\nFROM t\nSELECT b FROM u"
        assert read(text) == ["SELECT a FROM t", "SELECT b FROM u"]

    def test_semicolon_line_after_unterminated_statement(self):
        # The pending statement ends when the next one begins, even when
        # only the second carries a terminator.
        text = "SELECT a FROM t\nSELECT b FROM u;"
        assert read(text) == ["SELECT a FROM t", "SELECT b FROM u"]

    def test_inline_comment_stripped(self):
        assert read("SELECT a FROM t  -- trace 7\n") == ["SELECT a FROM t"]

    def test_full_line_comment_inside_statement_is_noop(self):
        text = "SELECT a\n-- picks recent rows\nFROM t WHERE x > 1\n"
        assert read(text) == ["SELECT a FROM t WHERE x > 1"]

    def test_comment_marker_inside_quotes_preserved(self):
        text = "SELECT a FROM t WHERE b = 'x -- not a comment'\n"
        assert read(text) == ["SELECT a FROM t WHERE b = 'x -- not a comment'"]

    def test_semicolon_inside_quotes_preserved(self):
        text = "SELECT a FROM t WHERE b = 'x; y';\n"
        assert read(text) == ["SELECT a FROM t WHERE b = 'x; y'"]

    def test_multiline_subquery_not_split(self):
        # A line-leading SELECT inside an open parenthesis is a subquery,
        # not a new statement.
        text = (
            "SELECT title FROM publication WHERE jid IN (\n"
            "SELECT jid FROM journal\n"
            ")\n"
        )
        assert read(text) == [
            "SELECT title FROM publication WHERE jid IN ( "
            "SELECT jid FROM journal )"
        ]

    def test_blank_line_inside_parentheses_is_not_a_separator(self):
        text = (
            "SELECT title FROM publication WHERE jid IN (\n\n"
            "SELECT jid FROM journal )\n"
        )
        assert read(text) == [
            "SELECT title FROM publication WHERE jid IN ( "
            "SELECT jid FROM journal )"
        ]

    def test_statement_after_closed_subquery_still_splits(self):
        text = (
            "SELECT title FROM publication WHERE jid IN (\n"
            "SELECT jid FROM journal )\n"
            "SELECT name FROM author\n"
        )
        assert read(text) == [
            "SELECT title FROM publication WHERE jid IN ( "
            "SELECT jid FROM journal )",
            "SELECT name FROM author",
        ]

    def test_multiline_subquery_parses(self, mini_db):
        text = (
            "SELECT title FROM publication WHERE jid IN (\n"
            "SELECT jid FROM journal\n"
            ");\n"
        )
        (statement,) = read(text)
        fragments_of_sql(statement, mini_db.catalog)  # must not raise

    def test_multiline_update_set_clause_not_split(self):
        text = "UPDATE publication\nSET year = 2001\nWHERE pid = 3;\n"
        assert read(text) == ["UPDATE publication SET year = 2001 WHERE pid = 3"]

    def test_quoted_parentheses_ignored_by_depth_tracking(self):
        text = "SELECT a FROM t WHERE b = '('\nSELECT c FROM u\n"
        assert read(text) == [
            "SELECT a FROM t WHERE b = '('",
            "SELECT c FROM u",
        ]

    def test_quote_escape(self):
        text = "SELECT a FROM t WHERE b = 'O''Brien';"
        assert read(text) == ["SELECT a FROM t WHERE b = 'O''Brien'"]

    def test_whitespace_normalized_outside_quotes(self):
        assert read("SELECT   a\tFROM    t WHERE b = 'two  spaces'") == [
            "SELECT a FROM t WHERE b = 'two  spaces'"
        ]

    def test_normalize_statement_folds_variants(self):
        variants = [
            "SELECT a FROM t WHERE x > 1",
            "SELECT a FROM t WHERE x > 1;",
            "SELECT a\n  FROM t\n  WHERE x > 1",
            "SELECT  a FROM t   WHERE x > 1  -- comment",
        ]
        normalized = {normalize_statement(v) for v in variants}
        assert normalized == {"SELECT a FROM t WHERE x > 1"}

    def test_fast_path_detection(self):
        assert is_line_per_statement("SELECT a FROM t\n-- note\nSELECT b FROM t")
        assert not is_line_per_statement("SELECT a FROM t;")
        assert not is_line_per_statement("SELECT a FROM t -- inline")
        assert not is_line_per_statement("SELECT a\nFROM t")


class TestQueryLogFromFile:
    def test_seed_format_unchanged(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text("-- header\nSELECT a FROM t\n\nSELECT b FROM t\n")
        assert QueryLog.from_file(path).queries == [
            "SELECT a FROM t",
            "SELECT b FROM t",
        ]

    def test_messy_format_delegates_to_reader(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text(
            "SELECT a\nFROM t  -- pretty-printed\nWHERE x > 1;\n\n"
            "SELECT b FROM u;\n"
        )
        assert QueryLog.from_file(path).queries == [
            "SELECT a FROM t WHERE x > 1",
            "SELECT b FROM u",
        ]


class TestWeightedAddQuery:
    def test_count_n_equals_n_single_adds(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT title FROM publication WHERE year > 2000", mini_db.catalog
        )
        weighted = QueryFragmentGraph()
        weighted.add_query(fragments, count=5)
        repeated = QueryFragmentGraph()
        for _ in range(5):
            repeated.add_query(fragments)
        assert weighted.fingerprint() == repeated.fingerprint()
        assert weighted.total_queries == 5

    def test_invalid_count_raises(self, mini_db):
        fragments = fragments_of_sql(
            "SELECT name FROM journal", mini_db.catalog
        )
        with pytest.raises(ReproError):
            QueryFragmentGraph().add_query(fragments, count=0)


class TestMergeAlgebra:
    def _graph_of(self, statements, catalog):
        return QueryLog(list(statements)).build_qfg(catalog)

    def test_merge_equals_concatenated_build(self, mini_db, mini_log):
        statements = mini_log.queries
        half = len(statements) // 2
        first = self._graph_of(statements[:half], mini_db.catalog)
        second = self._graph_of(statements[half:], mini_db.catalog)
        merged = first.merge(second)
        full = self._graph_of(statements, mini_db.catalog)
        assert merged.fingerprint() == full.fingerprint()

    def test_merge_commutes(self, mini_db, mini_log):
        statements = mini_log.queries
        a1 = self._graph_of(statements[:5], mini_db.catalog)
        b1 = self._graph_of(statements[5:], mini_db.catalog)
        a2 = self._graph_of(statements[:5], mini_db.catalog)
        b2 = self._graph_of(statements[5:], mini_db.catalog)
        assert a1.merge(b1).fingerprint() == b2.merge(a2).fingerprint()

    def test_merge_with_empty_is_identity(self, mini_db, mini_log):
        graph = mini_log.build_qfg(mini_db.catalog)
        before = graph.fingerprint()
        graph.merge(QueryFragmentGraph())
        assert graph.fingerprint() == before

    def test_merge_obscurity_mismatch_raises(self):
        with pytest.raises(ReproError):
            QueryFragmentGraph(Obscurity.NO_CONST_OP).merge(
                QueryFragmentGraph(Obscurity.FULL)
            )

    def test_merge_sums_skipped(self):
        first, second = QueryFragmentGraph(), QueryFragmentGraph()
        first.skipped, second.skipped = 2, 3
        assert first.merge(second).skipped == 5


class TestSkippedField:
    def test_round_trips_serialization(self, mini_db):
        log = QueryLog(["NOT SQL", "SELECT name FROM journal"])
        graph = log.build_qfg(mini_db.catalog)
        assert graph.skipped == 1
        restored = QueryFragmentGraph.from_dict(
            json.loads(json.dumps(graph.to_dict()))
        )
        assert restored.skipped == 1
        assert restored.fingerprint() == graph.fingerprint()

    def test_old_payloads_without_skipped_load(self, mini_db):
        log = QueryLog(["SELECT name FROM journal"])
        payload = log.build_qfg(mini_db.catalog).to_dict()
        del payload["skipped"]
        assert QueryFragmentGraph.from_dict(payload).skipped == 0

    def test_snapshot_preserves_skipped(self, mini_db):
        graph = QueryLog(["junk"]).build_qfg(mini_db.catalog)
        assert graph.snapshot().skipped == 1

    def test_fractional_session_counts_round_trip(self, mini_db):
        log = SessionLog()
        log.add("s1", "SELECT title FROM publication")
        log.add("s1", "SELECT name FROM journal")
        graph = SessionQFG.from_session_log(log, mini_db.catalog)
        restored = QueryFragmentGraph.from_dict(
            json.loads(json.dumps(graph.to_dict()))
        )
        assert restored.ne(
            "SELECT::publication.title", "SELECT::journal.name"
        ) == pytest.approx(0.5)
        assert restored.fingerprint() == graph.fingerprint()


class TestShards:
    def test_shard_entries_partition(self):
        entries = [(f"q{i}", i + 1) for i in range(10)]
        shards = shard_entries(entries, 3)
        assert len(shards) == 3
        flat = [entry for shard in shards for entry in shard]
        assert sorted(flat) == sorted(entries)

    def test_shard_entries_invalid_count(self):
        with pytest.raises(ReproError):
            shard_entries([], 0)

    def test_sessions_never_split(self):
        log = SessionLog()
        for i in range(40):
            log.add(f"s{i % 7}", f"SELECT a FROM t WHERE x > {i}")
        shards = shard_sessions(log, 3)
        owner: dict[str, int] = {}
        for index, shard in enumerate(shards):
            for session_id, _ in shard.entries:
                assert owner.setdefault(session_id, index) == index
        assert sum(len(shard) for shard in shards) == len(log)

    def test_session_shards_deterministic(self):
        log = SessionLog()
        for i in range(30):
            log.add(f"s{i % 5}", f"SELECT a FROM t WHERE x > {i}")
        first = [shard.entries for shard in shard_sessions(log, 4)]
        second = [shard.entries for shard in shard_sessions(log, 4)]
        assert first == second


class TestPipeline:
    @pytest.fixture()
    def messy_log(self, mini_db, tmp_path):
        generator = SyntheticLogGenerator(mini_db.catalog, seed=11,
                                          pool_size=40)
        return generator.write(tmp_path / "log.sql", 600, noise_rate=0.05)

    def test_fingerprint_parity_inline(self, mini_db, messy_log):
        sequential = QueryLog.from_file(messy_log).build_qfg(mini_db.catalog)
        result = ingest_log(messy_log, mini_db.catalog, num_shards=5,
                            workers=1)
        assert result.qfg.fingerprint() == sequential.fingerprint()
        assert result.qfg.skipped == sequential.skipped
        assert result.stats.raw_statements >= 600
        assert result.stats.unique_statements < result.stats.raw_statements

    def test_fingerprint_parity_worker_processes(self, mini_db, messy_log):
        sequential = QueryLog.from_file(messy_log).build_qfg(mini_db.catalog)
        result = ingest_log(messy_log, mini_db.catalog, num_shards=4,
                            workers=2)
        assert result.qfg.fingerprint() == sequential.fingerprint()

    def test_accepts_query_log_and_lines(self, mini_db, mini_log):
        from_log = ingest_log(mini_log, mini_db.catalog, num_shards=2,
                              workers=1)
        lines = "\n".join(mini_log.queries).splitlines()
        from_lines = ingest_log(lines, mini_db.catalog, num_shards=2,
                                workers=1)
        sequential = mini_log.build_qfg(mini_db.catalog)
        assert from_log.qfg.fingerprint() == sequential.fingerprint()
        assert from_lines.qfg.fingerprint() == sequential.fingerprint()

    def test_checkpoint_resume(self, mini_db, messy_log, tmp_path):
        checkpoint = tmp_path / "ckpt"
        with pytest.raises(IngestInterrupted):
            ingest_log(messy_log, mini_db.catalog, num_shards=6, workers=1,
                       checkpoint_dir=checkpoint, fail_after_shards=2)
        assert (checkpoint / "manifest.json").is_file()
        sequential = QueryLog.from_file(messy_log).build_qfg(mini_db.catalog)
        resumed = ingest_log(messy_log, mini_db.catalog, num_shards=6,
                             workers=1, checkpoint_dir=checkpoint)
        assert resumed.stats.reused_shards == 2
        assert resumed.stats.built_shards == 4
        assert resumed.qfg.fingerprint() == sequential.fingerprint()
        # A successful run clears its checkpoint.
        assert not (checkpoint / "manifest.json").exists()

    def test_stale_checkpoint_discarded_when_log_changes(
        self, mini_db, messy_log, tmp_path
    ):
        checkpoint = tmp_path / "ckpt"
        with pytest.raises(IngestInterrupted):
            ingest_log(messy_log, mini_db.catalog, num_shards=4, workers=1,
                       checkpoint_dir=checkpoint, fail_after_shards=1)
        other = QueryLog(["SELECT name FROM journal"])
        result = ingest_log(other, mini_db.catalog, num_shards=4, workers=1,
                            checkpoint_dir=checkpoint)
        assert result.stats.reused_shards == 0
        assert result.qfg.fingerprint() == other.build_qfg(
            mini_db.catalog
        ).fingerprint()

    def test_no_resume_rebuilds_everything(self, mini_db, messy_log, tmp_path):
        checkpoint = tmp_path / "ckpt"
        with pytest.raises(IngestInterrupted):
            ingest_log(messy_log, mini_db.catalog, num_shards=4, workers=1,
                       checkpoint_dir=checkpoint, fail_after_shards=2)
        result = ingest_log(messy_log, mini_db.catalog, num_shards=4,
                            workers=1, checkpoint_dir=checkpoint,
                            resume=False)
        assert result.stats.reused_shards == 0
        assert result.stats.built_shards == 4

    def test_dedup_statements_counts(self):
        entries, total = dedup_statements(["a", "b", "a", "a"])
        assert total == 4
        assert entries == [("a", 3), ("b", 1)]


class TestSessionIngest:
    def test_parity_with_direct_build(self, mini_db):
        generator = SyntheticLogGenerator(mini_db.catalog, seed=3,
                                          pool_size=30)
        log = SessionLog()
        for index, sql in enumerate(generator.statements(120)):
            log.add(f"user{index % 9}", sql)
        direct = SessionQFG.from_session_log(log, mini_db.catalog)
        sharded = ingest_session_log(log, mini_db.catalog, num_shards=4,
                                     workers=1)
        assert sharded.fingerprint() == direct.fingerprint()

    def test_parity_for_non_dyadic_weights(self, mini_db):
        # 0.1 is not binary-exact; parity must hold anyway because the
        # session mass accumulates as exact rationals.
        generator = SyntheticLogGenerator(mini_db.catalog, seed=13,
                                          pool_size=25)
        log = SessionLog()
        for index, sql in enumerate(generator.statements(70)):
            log.add(f"user{index % 7}", sql)
        direct = SessionQFG.from_session_log(log, mini_db.catalog,
                                             session_weight=0.1)
        for shards in (2, 3, 5):
            sharded = ingest_session_log(log, mini_db.catalog,
                                         session_weight=0.1,
                                         num_shards=shards, workers=1)
            assert sharded.fingerprint() == direct.fingerprint()

    def test_parity_for_non_dyadic_weights_across_processes(self, mini_db):
        generator = SyntheticLogGenerator(mini_db.catalog, seed=13,
                                          pool_size=25)
        log = SessionLog()
        for index, sql in enumerate(generator.statements(60)):
            log.add(f"user{index % 6}", sql)
        direct = SessionQFG.from_session_log(log, mini_db.catalog,
                                             session_weight=0.3)
        sharded = ingest_session_log(log, mini_db.catalog,
                                     session_weight=0.3,
                                     num_shards=3, workers=2)
        assert sharded.fingerprint() == direct.fingerprint()

    def test_session_log_file_round_trip(self, tmp_path):
        log = SessionLog()
        log.add("s1", "SELECT a FROM t;")
        log.add("s2", "SELECT b FROM u")
        path = tmp_path / "sessions.tsv"
        log.save(path)
        loaded = SessionLog.from_file(path)
        # Normalization strips the trailing semicolon on load.
        assert loaded.entries == [
            ("s1", "SELECT a FROM t"),
            ("s2", "SELECT b FROM u"),
        ]

    def test_session_log_file_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "sessions.tsv"
        path.write_text("no tab separator here\n")
        with pytest.raises(ReproError):
            SessionLog.from_file(path)


class TestLogGenerator:
    def test_deterministic(self, mini_db, tmp_path):
        first = write_synthetic_log(tmp_path / "a.sql", mini_db.catalog, 200,
                                    seed=5, pool_size=30)
        second = write_synthetic_log(tmp_path / "b.sql", mini_db.catalog, 200,
                                     seed=5, pool_size=30)
        assert first.read_text() == second.read_text()

    def test_pool_statements_parse(self, mini_db):
        generator = SyntheticLogGenerator(mini_db.catalog, seed=5,
                                          pool_size=30)
        for sql in generator.pool:
            fragments_of_sql(sql, mini_db.catalog)  # must not raise

    def test_zero_noise_log_has_no_skips(self, mini_db, tmp_path):
        path = write_synthetic_log(tmp_path / "clean.sql", mini_db.catalog,
                                   150, seed=5, pool_size=30, noise_rate=0.0)
        graph = QueryLog.from_file(path).build_qfg(mini_db.catalog)
        assert graph.skipped == 0
        assert graph.total_queries >= 150


class TestArtifactPublish:
    def test_ingest_publish_and_serve_load(self, mas_dataset, tmp_path):
        from repro.serving import ArtifactStore

        generator = SyntheticLogGenerator(mas_dataset.database.catalog,
                                          seed=9, pool_size=50)
        log_path = generator.write(tmp_path / "log.sql", 300)
        result = ingest_log(log_path, mas_dataset.database.catalog,
                            num_shards=3, workers=1)
        store = ArtifactStore(tmp_path / "store")
        published = store.compile(mas_dataset, result.log, qfg=result.qfg)
        loaded = store.load(mas_dataset.name)
        assert loaded.version == published.version
        assert loaded.qfg.fingerprint() == result.qfg.fingerprint()
        assert loaded.qfg.skipped == result.qfg.skipped
        assert loaded.manifest["counts"]["qfg_queries"] == (
            result.qfg.total_queries
        )

    def test_leftover_checkpoint_is_not_an_artifact_version(
        self, mas_dataset, tmp_path
    ):
        # A killed `repro ingest` leaves a checkpoint manifest behind;
        # version listing/resolution must never mistake it for a version.
        from repro.errors import ArtifactError
        from repro.ingest import IngestCheckpoint
        from repro.serving import ArtifactStore

        store_root = tmp_path / "store"
        stray = store_root / mas_dataset.name / "stray-checkpoint"
        checkpoint = IngestCheckpoint(stray)
        checkpoint.begin("some-plan", 2)
        checkpoint.commit_shard(0, QueryFragmentGraph())
        store = ArtifactStore(store_root)
        assert store.versions(mas_dataset.name) == []
        with pytest.raises(ArtifactError, match="no artifacts"):
            store.resolve(mas_dataset.name)

    def test_prebuilt_qfg_requires_log(self, mas_dataset, tmp_path):
        from repro.errors import ArtifactError
        from repro.serving import ArtifactStore

        graph = QueryFragmentGraph()
        with pytest.raises(ArtifactError):
            ArtifactStore(tmp_path).compile(mas_dataset, qfg=graph)
