"""Merge algebra of the fixed-bucket histograms.

The whole point of :class:`repro.obs.histogram.Histogram` is that
merging is *exact*: combining two histograms is indistinguishable from
having recorded the union of their samples into one.  That property is
what lets multi-process workers and cross-instance scrapers aggregate
without loss, so it gets spelled out as tests here.
"""

from __future__ import annotations

import pytest

from repro.obs.histogram import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    log_spaced_bounds,
)

BOUNDS = (0.001, 0.01, 0.1, 1.0)

SAMPLES_A = [0.0004, 0.002, 0.03, 0.03, 0.5]
SAMPLES_B = [0.009, 0.2, 7.0]


def _filled(samples, bounds=BOUNDS) -> Histogram:
    histogram = Histogram(bounds)
    for value in samples:
        histogram.record(value)
    return histogram


class TestMergeAlgebra:
    def test_merge_equals_union_of_samples(self):
        merged = _filled(SAMPLES_A).merge(_filled(SAMPLES_B))
        assert merged == _filled(SAMPLES_A + SAMPLES_B)

    def test_merge_is_commutative(self):
        a, b = _filled(SAMPLES_A), _filled(SAMPLES_B)
        assert a.merge(b) == b.merge(a)

    def test_merge_is_associative(self):
        a = _filled(SAMPLES_A)
        b = _filled(SAMPLES_B)
        c = _filled([0.0001, 0.05])
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_empty_is_the_identity(self):
        a = _filled(SAMPLES_A)
        empty = Histogram(BOUNDS)
        assert a.merge(empty) == a
        assert empty.merge(a) == a

    def test_merging_two_empties_stays_empty(self):
        merged = Histogram(BOUNDS).merge(Histogram(BOUNDS))
        assert merged.count == 0
        assert merged.counts == [0] * (len(BOUNDS) + 1)
        assert merged.quantile(0.99) == 0.0

    def test_mismatched_bounds_refuse_to_merge(self):
        with pytest.raises(ValueError, match="bounds"):
            Histogram((1.0, 2.0)).merge(Histogram((1.0, 3.0)))

    def test_merge_does_not_mutate_inputs(self):
        a, b = _filled(SAMPLES_A), _filled(SAMPLES_B)
        a.merge(b)
        assert a == _filled(SAMPLES_A)
        assert b == _filled(SAMPLES_B)


class TestBucketSemantics:
    def test_value_on_bound_lands_in_that_le_bucket(self):
        # Prometheus 'le' buckets are inclusive of their upper bound.
        histogram = Histogram(BOUNDS)
        histogram.record(0.01)
        assert histogram.counts[BOUNDS.index(0.01)] == 1

    def test_overflow_bucket_catches_values_past_the_top(self):
        histogram = Histogram(BOUNDS)
        histogram.record(99.0)
        assert histogram.counts[-1] == 1

    def test_dict_round_trip(self):
        original = _filled(SAMPLES_A)
        assert Histogram.from_dict(original.to_dict()) == original

    def test_empty_dict_round_trip(self):
        empty = Histogram(BOUNDS)
        restored = Histogram.from_dict(empty.to_dict())
        assert restored == empty
        restored.record(0.5)  # still usable after the trip
        assert restored.count == 1

    def test_default_bounds_cover_microseconds_to_seconds(self):
        assert DEFAULT_LATENCY_BOUNDS[0] <= 1e-5
        assert DEFAULT_LATENCY_BOUNDS[-1] >= 100.0
        assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)

    def test_log_spaced_bounds_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_spaced_bounds(0.0, 1.0)
        with pytest.raises(ValueError):
            log_spaced_bounds(1.0, 0.5)
