"""Tests for the evaluation harness: folds, metrics, tie rule."""

import pytest

from repro.core import QueryLog, Templar
from repro.core.interface import Keyword, KeywordMetadata
from repro.core.fragments import FragmentContext
from repro.datasets.base import BenchmarkItem
from repro.embedding import CompositeModel
from repro.errors import ReproError
from repro.eval import EvalConfig, evaluate_system
from repro.eval.folds import split_folds, train_test_split
from repro.eval.metrics import fq_correct, kw_correct
from repro.nlidb import PipelineNLIDB


class TestFolds:
    def test_near_equal_sizes(self):
        folds = split_folds(list(range(10)), 4, seed=1)
        sizes = sorted(len(fold) for fold in folds)
        assert sizes == [2, 2, 3, 3]

    def test_partition_is_complete(self):
        items = list(range(25))
        folds = split_folds(items, 4, seed=7)
        rejoined = sorted(x for fold in folds for x in fold)
        assert rejoined == items

    def test_deterministic(self):
        first = split_folds(list(range(20)), 4, seed=3)
        second = split_folds(list(range(20)), 4, seed=3)
        assert first == second

    def test_different_seed_differs(self):
        a = split_folds(list(range(20)), 4, seed=3)
        b = split_folds(list(range(20)), 4, seed=4)
        assert a != b

    def test_train_test_split(self):
        folds = split_folds(list(range(8)), 4, seed=1)
        train, test = train_test_split(folds, 2)
        assert sorted(train + test) == list(range(8))
        assert test == folds[2]

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            split_folds([1], 4)
        with pytest.raises(ReproError):
            split_folds(list(range(8)), 1)
        with pytest.raises(ReproError):
            train_test_split(split_folds(list(range(8)), 4), 9)


def make_item(gold_sql: str) -> BenchmarkItem:
    return BenchmarkItem(
        item_id="x-001",
        nlq="return the papers after 2000",
        keywords=[
            Keyword("papers", KeywordMetadata(FragmentContext.SELECT)),
            Keyword(
                "after 2000",
                KeywordMetadata(FragmentContext.WHERE, comparison_op=">"),
            ),
        ],
        gold_sql=gold_sql,
        family="test",
    )


class TestMetrics:
    def test_fq_correct_on_equivalent_sql(self, mini_db, mini_model, mini_templar):
        system = PipelineNLIDB(mini_db, mini_model, mini_templar)
        item = make_item("SELECT title FROM publication WHERE year > 2000")
        results = system.translate(item.keywords)
        assert fq_correct(item, results, mini_db.catalog)
        assert kw_correct(item, results, mini_db.catalog)

    def test_fq_incorrect_on_wrong_sql(self, mini_db, mini_model):
        baseline = PipelineNLIDB(mini_db, mini_model, None)
        item = make_item("SELECT title FROM publication WHERE year > 2000")
        results = baseline.translate(item.keywords)
        assert not fq_correct(item, results, mini_db.catalog)
        assert not kw_correct(item, results, mini_db.catalog)

    def test_empty_results_incorrect(self, mini_db):
        item = make_item("SELECT title FROM publication WHERE year > 2000")
        assert not fq_correct(item, [], mini_db.catalog)
        assert not kw_correct(item, [], mini_db.catalog)

    def test_tie_for_first_counts_incorrect(self, mini_db, mini_model, mini_templar):
        system = PipelineNLIDB(mini_db, mini_model, mini_templar)
        item = make_item("SELECT title FROM publication WHERE year > 2000")
        results = system.translate(item.keywords)
        top = results[0]
        # Forge a tie with a different query.
        import dataclasses

        rival_query = results[1].query if len(results) > 1 else None
        if rival_query is None or rival_query == top.query:
            rival = dataclasses.replace(
                top,
                query=dataclasses.replace(top.query, distinct=True),
            )
        else:
            rival = dataclasses.replace(
                results[1],
                config_score=top.config_score,
                join_score=top.join_score,
            )
        forged = [top, rival]
        assert not fq_correct(item, forged, mini_db.catalog)

    def test_tie_with_same_query_is_fine(self, mini_db, mini_model, mini_templar):
        system = PipelineNLIDB(mini_db, mini_model, mini_templar)
        item = make_item("SELECT title FROM publication WHERE year > 2000")
        results = system.translate(item.keywords)
        forged = [results[0], results[0]]
        assert fq_correct(item, forged, mini_db.catalog)

    def test_kw_ignores_relation_keywords(self, mini_db, mini_model, mini_templar):
        """FROM-context fragments are excluded from the KW metric."""
        system = PipelineNLIDB(mini_db, mini_model, mini_templar)
        item = BenchmarkItem(
            item_id="x-002",
            nlq="return the papers of John Smith",
            keywords=[
                Keyword("papers", KeywordMetadata(FragmentContext.SELECT)),
                Keyword("writes", KeywordMetadata(FragmentContext.FROM)),
                Keyword("John Smith", KeywordMetadata(FragmentContext.WHERE)),
            ],
            gold_sql=(
                "SELECT p.title FROM publication p, writes w, author a "
                "WHERE a.name = 'John Smith' AND w.aid = a.aid AND w.pid = p.pid"
            ),
            family="test",
        )
        results = system.translate(item.keywords)
        assert kw_correct(item, results, mini_db.catalog)


class TestHarness:
    def test_mas_smoke_single_system(self, mas_dataset):
        result = evaluate_system(mas_dataset, "Pipeline+", EvalConfig())
        assert result.total == 194
        assert 0.5 < result.fq_accuracy <= 1.0
        assert result.kw_accuracy >= result.fq_accuracy

    def test_family_breakdown_sums(self, mas_dataset):
        result = evaluate_system(mas_dataset, "Pipeline", EvalConfig())
        breakdown = result.family_breakdown()
        assert sum(total for _, total in breakdown.values()) == result.total

    def test_unknown_system_rejected(self, mas_dataset):
        with pytest.raises(ReproError):
            evaluate_system(mas_dataset, "GPT", EvalConfig())

    def test_failures_listing(self, mas_dataset):
        result = evaluate_system(mas_dataset, "Pipeline", EvalConfig())
        failures = result.failures("fq")
        assert all(not outcome.fq for outcome in failures)
