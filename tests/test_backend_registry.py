"""Backend registry: registration, dispatch, and eval-harness parity."""

from __future__ import annotations

import pytest

from repro.core import QueryLog, Templar
from repro.core.keyword_mapper import ScoringParams
from repro.embedding import CompositeModel, LexiconModel
from repro.errors import ReproError
from repro.eval import EvalConfig, evaluate_system
from repro.eval.folds import split_folds, train_test_split
from repro.eval.harness import SYSTEM_NAMES, _build_system
from repro.nlidb import NalirNLIDB, NalirParser, PipelineNLIDB
from repro.nlidb.registry import (
    backend_names,
    build_backend,
    display_names,
    get_backend,
    register,
    unregister,
)


class TestRegistryBasics:
    def test_builtin_backends_registered(self):
        assert set(backend_names()) >= {
            "pipeline", "pipeline+", "nalir", "nalir+"
        }

    def test_system_names_preserved(self):
        """The paper's four display names survive the registry redesign."""
        assert set(SYSTEM_NAMES) >= {"NaLIR", "NaLIR+", "Pipeline", "Pipeline+"}
        assert SYSTEM_NAMES == display_names()

    def test_lookup_is_case_insensitive(self):
        assert get_backend("Pipeline+").name == "pipeline+"
        assert get_backend("NALIR").name == "nalir"
        assert get_backend(" pipeline ").name == "pipeline"

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(ReproError, match="pipeline"):
            get_backend("sqlova")

    def test_spec_flags(self):
        assert get_backend("pipeline+").augmented
        assert not get_backend("pipeline").augmented
        assert get_backend("nalir").parses_nlq
        assert not get_backend("pipeline").parses_nlq

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            register("pipeline")(lambda *a, **k: None)

    def test_register_and_unregister_custom_backend(self, mini_db):
        @register("echo", display_name="Echo")
        def _build_echo(dataset, templar, **kwargs):
            return PipelineNLIDB(
                dataset.database, CompositeModel(dataset.lexicon), None
            )

        try:
            assert get_backend("echo").display_name == "Echo"
            assert "echo" in backend_names()
        finally:
            unregister("echo")
        with pytest.raises(ReproError):
            get_backend("echo")
        with pytest.raises(ReproError, match="unknown"):
            unregister("echo")

    def test_display_name_alias_resolves(self):
        """A backend resolves by the exact name SYSTEM_NAMES advertises."""

        @register("mysys+", display_name="MySys Plus", augmented=True)
        def _build_mysys(dataset, templar, **kwargs):
            raise NotImplementedError

        try:
            assert get_backend("MySys Plus").name == "mysys+"
            assert get_backend("mysys plus").name == "mysys+"
            assert get_backend("mysys+").name == "mysys+"
            with pytest.raises(ReproError, match="collides|already"):
                register("other", display_name="MySys Plus")(
                    lambda *a, **k: None
                )
        finally:
            unregister("MySys Plus")  # unregister by display name too
        with pytest.raises(ReproError):
            get_backend("mysys+")
        with pytest.raises(ReproError):
            get_backend("MySys Plus")


class TestBuildContract:
    def test_augmented_backend_requires_templar(self, mas_dataset):
        with pytest.raises(ReproError, match="needs a Templar"):
            build_backend("pipeline+", mas_dataset, None)

    def test_baseline_backend_rejects_templar(self, mini_db, mini_model,
                                              mini_log, mas_dataset):
        templar = Templar(mas_dataset.database,
                          CompositeModel(mas_dataset.lexicon), None)
        with pytest.raises(ReproError, match="does not consume"):
            build_backend("pipeline", mas_dataset, templar)

    def test_builds_the_right_types(self, mas_dataset):
        assert isinstance(
            build_backend("pipeline", mas_dataset), PipelineNLIDB
        )
        nalir = build_backend("nalir", mas_dataset)
        assert isinstance(nalir, NalirNLIDB)
        assert nalir.name == "NaLIR"


def _legacy_build_system(name, dataset, log, config):
    """The pre-registry hard-coded dispatch, verbatim, as the parity oracle."""
    database = dataset.database
    composite = CompositeModel(dataset.lexicon)
    if name == "Pipeline":
        return PipelineNLIDB(
            database, composite, None,
            max_configurations=config.max_configurations,
            params=config.scoring_params(),
        )
    if name == "Pipeline+":
        templar = Templar(
            database, composite, log,
            obscurity=config.obscurity,
            params=config.scoring_params(),
            use_log_keywords=config.use_log_keywords,
            use_log_joins=config.use_log_joins,
        )
        return PipelineNLIDB(
            database, composite, templar,
            max_configurations=config.max_configurations,
        )
    parser = NalirParser(database, dataset.schema_terms)
    wordnet_like = LexiconModel(dataset.nalir_model_lexicon())
    if name == "NaLIR":
        return NalirNLIDB(
            database, wordnet_like, parser, None,
            max_configurations=config.max_configurations,
            params=config.scoring_params(),
        )
    templar = Templar(
        database, composite, log,
        obscurity=config.obscurity,
        params=config.scoring_params(),
        use_log_keywords=config.use_log_keywords,
        use_log_joins=config.use_log_joins,
    )
    return NalirNLIDB(
        database, wordnet_like, parser, templar,
        max_configurations=config.max_configurations,
    )


def _legacy_evaluate(dataset, name, config):
    """The pre-registry evaluation loop over the legacy system builder."""
    from repro.eval.metrics import fq_correct, kw_correct

    items = dataset.usable_items()
    folds = split_folds(items, config.folds, config.fold_seed)
    catalog = dataset.database.catalog
    outcomes = []
    for trial in range(config.folds):
        train, test = train_test_split(folds, trial)
        log = QueryLog([item.gold_sql for item in train])
        system = _legacy_build_system(name, dataset, log, config)
        for item in test:
            try:
                if isinstance(system, NalirNLIDB):
                    results = system.translate_nlq(item.nlq)
                else:
                    results = system.translate(item.keywords)
            except ReproError:
                results = []
            outcomes.append((
                item.item_id,
                kw_correct(item, results, catalog),
                fq_correct(item, results, catalog),
                results[0].sql if results else None,
            ))
    return outcomes


class TestEvalParity:
    """Registry-driven evaluation must reproduce the old path exactly."""

    @pytest.mark.parametrize("system", ["Pipeline+", "NaLIR"])
    def test_registry_run_matches_legacy_numbers(self, yelp_dataset, system):
        config = EvalConfig()
        expected = _legacy_evaluate(yelp_dataset, system, config)
        result = evaluate_system(yelp_dataset, system, config)
        actual = [
            (o.item_id, o.kw, o.fq, o.top_sql) for o in result.outcomes
        ]
        assert actual == expected

    def test_canonical_name_matches_display_name(self, yelp_dataset):
        config = EvalConfig()
        by_display = evaluate_system(yelp_dataset, "Pipeline", config)
        by_canonical = evaluate_system(yelp_dataset, "pipeline", config)
        assert by_display.fq_accuracy == by_canonical.fq_accuracy
        assert by_display.kw_accuracy == by_canonical.kw_accuracy
        assert by_display.system == by_canonical.system == "Pipeline"


class TestDeprecatedShim:
    def test_build_system_warns_and_still_works(self, mas_dataset):
        log = QueryLog(
            [item.gold_sql for item in mas_dataset.usable_items()[:10]]
        )
        with pytest.warns(DeprecationWarning, match="Engine.from_config"):
            system = _build_system("Pipeline+", mas_dataset, log, EvalConfig())
        assert isinstance(system, PipelineNLIDB)
        assert system.name == "Pipeline+"

    def test_evaluate_system_does_not_warn(self, yelp_dataset, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            evaluate_system(
                yelp_dataset, "Pipeline", EvalConfig(folds=2)
            )
