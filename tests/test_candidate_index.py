"""CandidateIndex: indexed retrieval must equal the brute-force scans."""

import pytest

from repro.core import FragmentContext, Keyword, KeywordMetadata
from repro.core.candidate_index import CandidateIndex
from repro.core.keyword_mapper import KeywordMapper
from repro.db import Column, ColumnType, Database, TableSchema
from repro.db.stemmer import stem
from repro.embedding import CompositeModel
from repro.errors import ReproError

WHERE = FragmentContext.WHERE
SELECT = FragmentContext.SELECT
FROM = FragmentContext.FROM


def kw(text, context=WHERE, op=None, aggregates=(), **kwargs):
    return Keyword(
        text,
        KeywordMetadata(
            context=context, comparison_op=op, aggregates=aggregates, **kwargs
        ),
    )


def workload_keywords(dataset):
    for item in dataset.usable_items():
        yield from item.keywords


class TestIndexEqualsBruteForce:
    """Index retrieval == a full scan, keyword by keyword (MAS and Yelp)."""

    @pytest.mark.parametrize("name", ["mas_dataset", "yelp_dataset"])
    def test_candidates_match_on_benchmark(self, name, request):
        dataset = request.getfixturevalue(name)
        model = CompositeModel(dataset.lexicon)
        fast = KeywordMapper(dataset.database, model)
        slow = KeywordMapper(dataset.database, model, use_index=False)
        checked = 0
        for keyword in workload_keywords(dataset):
            assert fast.keyword_candidates(keyword) == slow.keyword_candidates(
                keyword
            ), f"candidate mismatch for {keyword!r}"
            checked += 1
        assert checked > 100  # the whole benchmark workload ran

    @pytest.mark.parametrize("name", ["mas_dataset", "yelp_dataset"])
    def test_scored_mappings_match_on_benchmark(self, name, request):
        dataset = request.getfixturevalue(name)
        model = CompositeModel(dataset.lexicon)
        fast = KeywordMapper(dataset.database, model)
        slow = KeywordMapper(dataset.database, model, use_index=False)
        for keyword in workload_keywords(dataset):
            scored_fast = fast.score_and_prune(
                keyword, fast.keyword_candidates(keyword)
            )
            scored_slow = slow.score_and_prune(
                keyword, slow.keyword_candidates(keyword)
            )
            assert scored_fast == scored_slow

    def test_search_column_matches_fulltext(self, mas_dataset):
        db = mas_dataset.database
        index = CandidateIndex.from_database(db)
        probes = (
            ["query"], ["data", "mining"], ["xml"], ["nosuchtoken"],
            ["restaur"], [],
        )
        for table, column in db.fulltext.columns():
            for tokens in probes:
                assert index.search_column(table, column, tokens) == (
                    db.fulltext.search_column(table, column, tokens)
                )

    def test_candidate_columns_is_superset(self, mas_dataset):
        """The shortlist never excludes a column the exact search matches."""
        db = mas_dataset.database
        index = CandidateIndex.from_database(db)
        for tokens in (["query"], ["data"], ["journal"], ["h", "index"]):
            shortlist = set(index.candidate_columns(tokens))
            for table, column in db.fulltext.columns():
                if db.fulltext.search_column(table, column, tokens):
                    assert (table, column) in shortlist


@pytest.fixture()
def numeric_db():
    db = Database("nums")
    db.create_table(
        TableSchema(
            "reading",
            [
                Column("id", ColumnType.INTEGER),
                Column("value", ColumnType.FLOAT),
                Column("note", ColumnType.TEXT, searchable=True),
            ],
            primary_key="id",
        )
    )
    db.create_table(
        TableSchema("empty", [Column("n", ColumnType.INTEGER)])
    )
    db.insert_many(
        "reading",
        [
            (1, 3.5, "Monitoring Systems"),
            (2, 3.5, "System monitors"),
            (3, -1.0, "Pressurized systems"),
            (4, None, "No reading recorded"),
        ],
    )
    return db


class TestNumericEdgeCases:
    OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")
    LITERALS = (-1.0, -0.5, 0, 3.5, 3.6, 100)

    def test_matches_row_scan(self, numeric_db):
        index = CandidateIndex.from_database(numeric_db)
        for op in self.OPS:
            for literal in self.LITERALS:
                assert index.predicate_nonempty(
                    "reading", "value", op, literal
                ) == numeric_db.predicate_nonempty(
                    "reading", "value", op, literal
                ), f"value {op} {literal}"

    def test_empty_column_never_matches(self, numeric_db):
        index = CandidateIndex.from_database(numeric_db)
        for op in self.OPS:
            assert index.predicate_nonempty("empty", "n", op, 0) is False

    def test_nulls_never_satisfy(self, numeric_db):
        # Row 4 has value NULL; != must not treat it as a match.
        index = CandidateIndex.from_database(numeric_db)
        # All non-NULL distinct values are {3.5, -1.0}: != 3.5 matches -1.0
        assert index.predicate_nonempty("reading", "value", "!=", 3.5)
        # A column whose only non-NULL value equals the literal: build one.
        db = Database("single")
        db.create_table(
            TableSchema("t", [Column("x", ColumnType.INTEGER)])
        )
        db.insert_many("t", [(7,), (None,), (7,)])
        single = CandidateIndex.from_database(db)
        assert single.predicate_nonempty("t", "x", "!=", 7) is False
        assert single.predicate_nonempty("t", "x", "=", 7) is True

    def test_non_numeric_column_rejected(self, numeric_db):
        index = CandidateIndex.from_database(numeric_db)
        with pytest.raises(ReproError):
            index.predicate_nonempty("reading", "note", "=", 1)


class TestStemmingEdgeCases:
    def test_stemmed_prefix_search(self, numeric_db):
        """'monitoring' stems to 'monitor' and prefix-matches 'monitors'."""
        index = CandidateIndex.from_database(numeric_db)
        hits = index.search_column("reading", "note", ["monitoring"])
        assert hits == ["Monitoring Systems", "System monitors"]

    def test_schema_stems_cover_name_tokens(self, mas_dataset):
        """Compound schema names contribute the stem of each word token."""
        from repro.embedding.tokenize import word_tokens

        index = CandidateIndex.from_database(mas_dataset.database)
        for table, column in index._postings:
            stems = index.schema_stems(table, column)
            for token in word_tokens(table) + word_tokens(column):
                assert stem(token) in stems

    def test_value_keyword_mapping_uses_stems(self, mini_db, mini_model):
        """'Queries' reaches 'Scalable Query Processing' via stemming on
        both the indexed and the scan path."""
        fast = KeywordMapper(mini_db, mini_model)
        slow = KeywordMapper(mini_db, mini_model, use_index=False)
        keyword = kw("Scalable Queries")
        assert fast.keyword_candidates(keyword) == slow.keyword_candidates(
            keyword
        )
        assert any(
            c.value == "Scalable Query Processing"
            for c in fast.keyword_candidates(keyword)
        )


class TestStaleness:
    def test_index_rebuilds_after_insert(self, mini_db, mini_model):
        mapper = KeywordMapper(mini_db, mini_model)
        assert mapper.keyword_candidates(kw("TMC Letters")) == []
        mini_db.insert("journal", (3, "TMC Letters"))
        candidates = mapper.keyword_candidates(kw("TMC Letters"))
        assert [c.value for c in candidates] == ["TMC Letters"]

    def test_scored_memo_invalidated_by_insert(self, mini_db, mini_model):
        mapper = KeywordMapper(mini_db, mini_model)
        before = mapper.map_keywords([kw("TKDE")])
        assert before  # warm the memo
        mini_db.insert("journal", (3, "TKDE Letters"))
        after = mapper.map_keywords([kw("TKDE Letters")])
        values = {
            m.fragment.value for c in after for m in c.mappings
        }
        assert "TKDE Letters" in values


class TestRoundTrip:
    def test_dict_round_trip_preserves_retrieval(self, mas_dataset):
        db = mas_dataset.database
        original = CandidateIndex.from_database(db)
        restored = CandidateIndex.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        for table, column in db.fulltext.columns():
            assert restored.search_column(
                table, column, ["data"]
            ) == original.search_column(table, column, ["data"])
        for ref in original.numeric_refs():
            assert restored.predicate_nonempty(
                ref.table, ref.column, ">", 0
            ) == original.predicate_nonempty(ref.table, ref.column, ">", 0)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ReproError):
            CandidateIndex.from_dict({"relations": []})

    def test_injected_index_used(self, mini_db, mini_model):
        index = CandidateIndex.from_database(mini_db)
        mapper = KeywordMapper(mini_db, mini_model, candidate_index=index)
        assert mapper.index is index
