"""Shared fixtures: a small academic database and the full benchmarks."""

from __future__ import annotations

import pytest

from repro.core import QueryLog, Templar
from repro.db import Catalog, Column, ColumnType, Database, ForeignKey, TableSchema
from repro.embedding import CompositeModel, Lexicon

_INT = ColumnType.INTEGER
_TEXT = ColumnType.TEXT


def build_mini_db() -> Database:
    """A miniature MAS-like schema used across unit tests."""
    db = Database("mini", Catalog())
    db.create_table(
        TableSchema(
            "publication",
            [
                Column("pid", _INT),
                Column("title", _TEXT, display=True, searchable=True),
                Column("year", _INT),
                Column("jid", _INT),
            ],
            primary_key="pid",
        )
    )
    db.create_table(
        TableSchema(
            "journal",
            [
                Column("jid", _INT),
                Column("name", _TEXT, display=True, searchable=True),
            ],
            primary_key="jid",
        )
    )
    db.create_table(
        TableSchema(
            "author",
            [
                Column("aid", _INT),
                Column("name", _TEXT, display=True, searchable=True),
            ],
            primary_key="aid",
        )
    )
    db.create_table(
        TableSchema("writes", [Column("aid", _INT), Column("pid", _INT)])
    )
    db.add_foreign_key(ForeignKey("publication", "jid", "journal", "jid"))
    db.add_foreign_key(ForeignKey("writes", "aid", "author", "aid"))
    db.add_foreign_key(ForeignKey("writes", "pid", "publication", "pid"))
    db.insert_many("journal", [(1, "TKDE"), (2, "TMC")])
    db.insert_many(
        "publication",
        [
            (1, "Scalable Query Processing", 2004, 1),
            (2, "Mobile Network Survey", 1999, 2),
            (3, "Streaming Joins Revisited", 2006, 1),
            (4, "Adaptive Indexing", 2010, 1),
        ],
    )
    db.insert_many("author", [(1, "John Smith"), (2, "Jane Doe")])
    db.insert_many("writes", [(1, 1), (2, 1), (1, 3), (2, 4)])
    return db


def build_mini_lexicon() -> Lexicon:
    lexicon = Lexicon()
    lexicon.add("paper", "journal", 0.59)
    lexicon.add("paper", "publication", 0.585)
    lexicon.add("paper", "title", 0.55)
    lexicon.add("after", "year", 0.70)
    return lexicon


def build_mini_log() -> QueryLog:
    log = QueryLog()
    for _ in range(6):
        log.add("SELECT p.title FROM publication p WHERE p.year > 2000")
    for _ in range(4):
        log.add(
            "SELECT p.title FROM publication p, journal j "
            "WHERE j.name = 'TKDE' AND p.jid = j.jid"
        )
    for _ in range(3):
        log.add(
            "SELECT p.title FROM publication p, writes w, author a "
            "WHERE a.name = 'John Smith' AND w.aid = a.aid AND w.pid = p.pid"
        )
    for _ in range(2):
        log.add(
            "SELECT COUNT(p.title) FROM publication p, writes w, author a "
            "WHERE a.name = 'Jane Doe' AND w.aid = a.aid AND w.pid = p.pid"
        )
    for _ in range(2):
        log.add("SELECT p.title FROM publication p ORDER BY p.year DESC")
    for _ in range(2):
        log.add("SELECT j.name FROM journal j")
    return log


@pytest.fixture()
def mini_db() -> Database:
    return build_mini_db()


@pytest.fixture()
def mini_lexicon() -> Lexicon:
    return build_mini_lexicon()


@pytest.fixture()
def mini_model(mini_lexicon) -> CompositeModel:
    return CompositeModel(mini_lexicon)


@pytest.fixture()
def mini_log() -> QueryLog:
    return build_mini_log()


@pytest.fixture()
def mini_templar(mini_db, mini_model, mini_log) -> Templar:
    return Templar(mini_db, mini_model, mini_log)


# Benchmark datasets are expensive; build once per test session.


@pytest.fixture(scope="session")
def mas_dataset():
    from repro.datasets import load_dataset

    return load_dataset("mas")


@pytest.fixture(scope="session")
def yelp_dataset():
    from repro.datasets import load_dataset

    return load_dataset("yelp")


@pytest.fixture(scope="session")
def imdb_dataset():
    from repro.datasets import load_dataset

    return load_dataset("imdb")
