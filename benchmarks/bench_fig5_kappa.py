"""Figure 5 — Pipeline+ accuracy as a function of κ (λ fixed at 0.8).

The paper sweeps the number of candidate keyword mappings kept per
keyword over 2..10 and reports that any κ ≥ 5 yields roughly constant
accuracy (κ=5 is the default everywhere else).
"""

from _harness import accuracy, dataset_names, format_rows, publish
from repro.eval import EvalConfig

KAPPA_VALUES = (2, 4, 5, 6, 8, 10)


def _run_kappa_sweep() -> dict[str, list[tuple[int, float]]]:
    series: dict[str, list[tuple[int, float]]] = {}
    for dataset in dataset_names():
        points = []
        for kappa in KAPPA_VALUES:
            _, fq = accuracy(dataset, "Pipeline+", EvalConfig(kappa=kappa))
            points.append((kappa, fq))
        series[dataset] = points
    return series


def test_fig5_kappa_sweep(benchmark):
    series = benchmark.pedantic(_run_kappa_sweep, rounds=1, iterations=1)
    rows = []
    for dataset, points in series.items():
        for kappa, fq in points:
            rows.append([dataset.upper(), kappa, fq])
    table = format_rows(["Dataset", "kappa", "FQ (%)"], rows)
    publish("fig5", "Figure 5 — Pipeline+ accuracy vs kappa (lambda=0.8)", table)

    for dataset, points in series.items():
        by_kappa = dict(points)
        plateau = [by_kappa[k] for k in (5, 6, 8, 10)]
        # κ ≥ 5 is a plateau: spread within a few points.
        assert max(plateau) - min(plateau) <= 5.0, f"{dataset}: plateau"
        # Small κ must not beat the plateau (tight pruning loses candidates).
        assert by_kappa[2] <= max(plateau) + 1e-9, f"{dataset}: kappa=2"
