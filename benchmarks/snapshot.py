"""Standardized perf-trajectory snapshots (``BENCH_<name>.json``).

Every headline benchmark writes one snapshot file at the repo root via
:func:`emit_snapshot`, so the performance trajectory of the codebase is
visible in version control: each PR that moves a headline number leaves
a machine-readable record of *what* the number was, *where* it was
measured (machine fingerprint), and *how* (the benchmark's config).

Schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "name": "perf_core",
      "created_unix": 1754550000.0,
      "machine": {"platform": ..., "python": ..., "machine": ..., "cpus": ...},
      "config": {...},          # benchmark knobs (smoke, passes, workload)
      "headline": {...}         # the numbers, flat name -> value
    }

Snapshot files land at the repository root (not ``benchmarks/results/``,
which is gitignored) precisely so they get committed.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

#: Bump when the snapshot layout changes incompatibly.
SCHEMA_VERSION = 1

#: Snapshots are committed, so they live at the repo root.
REPO_ROOT = Path(__file__).resolve().parent.parent


def machine_fingerprint() -> dict:
    """Where a snapshot was measured: enough to judge comparability."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def snapshot_path(name: str, out_dir: str | Path | None = None) -> Path:
    root = Path(out_dir) if out_dir is not None else REPO_ROOT
    return root / f"BENCH_{name}.json"


def emit_snapshot(
    name: str,
    headline: dict,
    *,
    config: dict | None = None,
    out_dir: str | Path | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``headline`` is the flat dict of numbers the benchmark stands
    behind; ``config`` records the knobs that produced them (smoke mode,
    pass counts, workload size).  ``out_dir`` redirects the file into
    another directory (used by tests to write into a tmp dir).
    """
    payload = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "created_unix": round(time.time(), 3),
        "machine": machine_fingerprint(),
        "config": dict(config or {}),
        "headline": dict(headline),
    }
    path = snapshot_path(name, out_dir)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def read_snapshot(path: str | Path) -> dict:
    """Load and structurally validate one snapshot file."""
    payload = json.loads(Path(path).read_text())
    missing = {
        "schema_version", "name", "created_unix", "machine", "config",
        "headline",
    } - set(payload)
    if missing:
        raise ValueError(
            f"snapshot {path} is missing field(s): {', '.join(sorted(missing))}"
        )
    if payload["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"snapshot {path} has schema_version "
            f"{payload['schema_version']}, expected {SCHEMA_VERSION}"
        )
    return payload


__all__ = [
    "SCHEMA_VERSION",
    "emit_snapshot",
    "machine_fingerprint",
    "read_snapshot",
    "snapshot_path",
]
