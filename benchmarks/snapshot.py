"""Standardized perf-trajectory snapshots (``BENCH_<name>.json``).

Every headline benchmark writes one snapshot file at the repo root via
:func:`emit_snapshot`, so the performance trajectory of the codebase is
visible in version control: each PR that moves a headline number leaves
a machine-readable record of *what* the number was, *where* it was
measured (machine fingerprint), and *how* (the benchmark's config).

Schema (``schema_version`` 2)::

    {
      "schema_version": 2,
      "name": "perf_core",
      "created_unix": 1754550000.0,
      "machine": {"platform": ..., "python": ..., "machine": ..., "cpus": ...},
      "config": {...},          # benchmark knobs (smoke, passes, workload)
      "headline": {...},        # the numbers, flat name -> value
      "history": [...]          # prior runs' {created_unix, config,
                                # headline}, oldest first, capped at
                                # HISTORY_KEEP
    }

Re-running a benchmark does not discard the previous run: its headline
is folded into ``history`` (the perf *trajectory*), so a committed
snapshot shows how the numbers moved across the runs that produced it.
Version-1 snapshots (no ``history``) still read fine.

Snapshot files land at the repository root (not ``benchmarks/results/``,
which is gitignored) precisely so they get committed.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

#: Bump when the snapshot layout changes incompatibly.
SCHEMA_VERSION = 2

#: Prior runs retained in a snapshot's ``history`` trajectory.
HISTORY_KEEP = 12

#: Schema versions :func:`read_snapshot` still understands.  Version 1
#: predates ``history``; reading one surfaces an empty trajectory.
_READABLE_VERSIONS = (1, SCHEMA_VERSION)

#: Snapshots are committed, so they live at the repo root.
REPO_ROOT = Path(__file__).resolve().parent.parent


def machine_fingerprint() -> dict:
    """Where a snapshot was measured: enough to judge comparability."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def snapshot_path(name: str, out_dir: str | Path | None = None) -> Path:
    root = Path(out_dir) if out_dir is not None else REPO_ROOT
    return root / f"BENCH_{name}.json"


def emit_snapshot(
    name: str,
    headline: dict,
    *,
    config: dict | None = None,
    out_dir: str | Path | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``headline`` is the flat dict of numbers the benchmark stands
    behind; ``config`` records the knobs that produced them (smoke mode,
    pass counts, workload size).  ``out_dir`` redirects the file into
    another directory (used by tests to write into a tmp dir).

    An existing snapshot at the same path is not discarded: its headline
    joins the new snapshot's ``history``, so repeated runs accumulate
    the performance trajectory (capped at :data:`HISTORY_KEEP` prior
    runs, oldest dropped first).
    """
    path = snapshot_path(name, out_dir)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "created_unix": round(time.time(), 3),
        "machine": machine_fingerprint(),
        "config": dict(config or {}),
        "headline": dict(headline),
        "history": _carried_history(path),
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def _carried_history(path: Path) -> list[dict]:
    """The trajectory a new snapshot at ``path`` inherits: the previous
    snapshot's history plus the previous run itself, oldest first."""
    try:
        prior = read_snapshot(path)
    except (OSError, ValueError, json.JSONDecodeError):
        # No prior snapshot (first run), or one too old/corrupt to carry
        # numbers forward from; start the trajectory fresh.
        return []
    history = list(prior.get("history", []))
    history.append(
        {
            "created_unix": prior["created_unix"],
            # Carried so trajectory readers can tell comparable runs
            # apart from e.g. smoke runs over a truncated workload.
            "config": prior.get("config", {}),
            "headline": prior["headline"],
        }
    )
    return history[-HISTORY_KEEP:]


def read_snapshot(path: str | Path) -> dict:
    """Load and structurally validate one snapshot file.

    Accepts the current schema and version 1 (pre-``history``); a v1
    payload comes back with an empty ``history`` so callers read one
    shape.
    """
    payload = json.loads(Path(path).read_text())
    missing = {
        "schema_version", "name", "created_unix", "machine", "config",
        "headline",
    } - set(payload)
    if missing:
        raise ValueError(
            f"snapshot {path} is missing field(s): {', '.join(sorted(missing))}"
        )
    if payload["schema_version"] not in _READABLE_VERSIONS:
        raise ValueError(
            f"snapshot {path} has schema_version "
            f"{payload['schema_version']}, expected {SCHEMA_VERSION}"
        )
    payload.setdefault("history", [])
    return payload


__all__ = [
    "HISTORY_KEEP",
    "SCHEMA_VERSION",
    "emit_snapshot",
    "machine_fingerprint",
    "read_snapshot",
    "snapshot_path",
]
