"""Obscurity-level ablation (Section VII-B prose).

The paper states: "While all obscurity levels, including Full and
NoConst, consistently improved on the baseline systems, we only show
results for the best-performing obscurity level NoConstOp."  This bench
regenerates that comparison for Pipeline+.
"""

from _harness import accuracy, dataset_names, format_rows, publish
from repro.core import Obscurity
from repro.eval import EvalConfig

LEVELS = (Obscurity.FULL, Obscurity.NO_CONST, Obscurity.NO_CONST_OP)


def _run_obscurity() -> dict[tuple[str, str], tuple[float, float]]:
    results = {}
    for dataset in dataset_names():
        baseline = accuracy(dataset, "Pipeline")
        results[(dataset, "baseline")] = baseline
        for level in LEVELS:
            results[(dataset, level.value)] = accuracy(
                dataset, "Pipeline+", EvalConfig(obscurity=level)
            )
    return results


def test_obscurity_ablation(benchmark):
    results = benchmark.pedantic(_run_obscurity, rounds=1, iterations=1)
    rows = [
        [dataset.upper(), level, kw, fq]
        for (dataset, level), (kw, fq) in results.items()
    ]
    table = format_rows(["Dataset", "Obscurity", "KW (%)", "FQ (%)"], rows)
    publish(
        "ablation_obscurity",
        "Ablation — fragment obscurity levels (Pipeline+ vs baseline)",
        table,
    )

    for dataset in dataset_names():
        baseline_fq = results[(dataset, "baseline")][1]
        for level in LEVELS:
            level_fq = results[(dataset, level.value)][1]
            assert level_fq > baseline_fq, (
                f"{dataset}/{level.value}: every obscurity level must "
                f"improve on the baseline"
            )
        # NoConstOp is the best-performing level (ties allowed).
        best = max(results[(dataset, level.value)][1] for level in LEVELS)
        assert results[(dataset, Obscurity.NO_CONST_OP.value)][1] >= best - 1e-9
