"""Table III — keyword mapping (KW) and full query (FQ) accuracy.

Runs the paper's headline experiment: 4-fold cross-validated top-1
accuracy of NaLIR, NaLIR+, Pipeline and Pipeline+ on the three
benchmarks, with the paper's parameters (NoConstOp, κ=5, λ=0.8).

The assertions check the paper's qualitative claims (who wins, and that
the augmented systems improve), not absolute numbers — the substrate is
synthetic (see DESIGN.md §5).
"""

from _harness import PAPER_TABLE3, accuracy, dataset_names, format_rows, publish

SYSTEMS = ("NaLIR", "NaLIR+", "Pipeline", "Pipeline+")


def _run_table3() -> dict[tuple[str, str], tuple[float, float]]:
    results = {}
    for dataset in dataset_names():
        for system in SYSTEMS:
            results[(dataset, system)] = accuracy(dataset, system)
    return results


def test_table3_accuracy(benchmark):
    results = benchmark.pedantic(_run_table3, rounds=1, iterations=1)
    rows = []
    for (dataset, system), (kw, fq) in results.items():
        paper_kw, paper_fq = PAPER_TABLE3[(dataset, system)]
        rows.append(
            [dataset.upper(), system, kw, paper_kw, fq, paper_fq]
        )
    table = format_rows(
        ["Dataset", "System", "KW (%)", "paper", "FQ (%)", "paper"], rows
    )
    publish("table3", "Table III — KW and FQ top-1 accuracy", table)

    for dataset in dataset_names():
        nalir_kw, nalir_fq = results[(dataset, "NaLIR")]
        nalirp_kw, nalirp_fq = results[(dataset, "NaLIR+")]
        pipe_kw, pipe_fq = results[(dataset, "Pipeline")]
        pipep_kw, pipep_fq = results[(dataset, "Pipeline+")]
        # The paper's qualitative structure:
        assert pipep_fq > pipe_fq, f"{dataset}: Pipeline+ must beat Pipeline"
        assert pipep_kw > pipe_kw, f"{dataset}: Pipeline+ must beat Pipeline (KW)"
        assert nalirp_fq >= nalir_fq, f"{dataset}: NaLIR+ must not lose to NaLIR"
        assert pipep_fq > nalirp_fq, f"{dataset}: Pipeline+ leads all systems"
        # Pipeline+ improves dramatically (the paper reports 57-138%).
        assert pipep_fq / pipe_fq >= 1.25, f"{dataset}: augmentation factor"
