"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md §6).  Results are printed and also
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote
them.

Set ``REPRO_BENCH_FAST=1`` to restrict dataset sweeps to MAS only (useful
while iterating); the full run covers all three benchmarks.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.datasets import load_dataset
from repro.eval import EvalConfig, evaluate_system
from repro.eval.reporting import format_rows, percentage

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's Table III numbers, for side-by-side printing.
PAPER_TABLE3 = {
    ("mas", "NaLIR"): (43.3, 33.0),
    ("mas", "NaLIR+"): (45.4, 40.2),
    ("mas", "Pipeline"): (39.7, 32.0),
    ("mas", "Pipeline+"): (77.8, 76.3),
    ("yelp", "NaLIR"): (52.8, 47.2),
    ("yelp", "NaLIR+"): (59.8, 52.8),
    ("yelp", "Pipeline"): (56.7, 54.3),
    ("yelp", "Pipeline+"): (85.0, 85.0),
    ("imdb", "NaLIR"): (40.6, 38.3),
    ("imdb", "NaLIR+"): (57.8, 50.0),
    ("imdb", "Pipeline"): (32.0, 27.3),
    ("imdb", "Pipeline+"): (67.2, 64.8),
}

#: Table IV (LogJoin ablation), FQ %.
PAPER_TABLE4 = {
    ("mas", "N"): 68.6, ("mas", "Y"): 76.3,
    ("yelp", "N"): 68.5, ("yelp", "Y"): 85.0,
    ("imdb", "N"): 60.9, ("imdb", "Y"): 64.8,
}


def dataset_names() -> list[str]:
    if os.environ.get("REPRO_BENCH_FAST"):
        return ["mas"]
    return ["mas", "yelp", "imdb"]


def accuracy(dataset_name: str, system: str, config: EvalConfig | None = None):
    """(KW%, FQ%) of one system under one evaluation configuration."""
    dataset = load_dataset(dataset_name)
    result = evaluate_system(dataset, system, config or EvalConfig())
    return (
        round(100.0 * result.kw_accuracy, 1),
        round(100.0 * result.fq_accuracy, 1),
    )


def publish(name: str, title: str, table: str) -> None:
    """Print and persist one result table."""
    output = f"{title}\n\n{table}\n"
    print("\n" + output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(output)


__all__ = [
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "accuracy",
    "dataset_names",
    "format_rows",
    "percentage",
    "publish",
]
