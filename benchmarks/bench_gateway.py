"""Gateway acceptance benchmark: multi-tenant throughput + reload blackout.

Not part of the paper's evaluation; this regenerates the two acceptance
numbers of the multi-tenant gateway subsystem:

* **consolidation** — aggregate HTTP throughput of one gateway hosting
  mas, yelp and imdb behind a single port, versus the same three
  engines behind three separate single-engine servers (the in-process
  stand-in for N separate processes: same handlers, same engines, one
  port each).  Hosting everything in one process must not cost more
  than a modest routing overhead.
* **hot-reload blackout** — traffic is hammered at one tenant while a
  new artifact version is published and ``/admin/reload`` fires.  The
  acceptance criterion is **zero failed requests** during the swap
  (this is gated, never advisory), every response attributable to
  exactly the old or the new version, and both versions observed (the
  swap really happened mid-traffic).  The "blackout" is the worst
  request latency in the swap window — with RCU swapping there is no
  pause, so it should sit near the steady-state tail, and the new
  engine is built entirely off the serving path.
* **shadow-canary gate** — a deliberately degraded artifact (the QFG
  compiled from a truncated query log) is published and a reload is
  requested while traffic hammers the tenant.  Acceptance: the canary
  replay detects the divergence and the reload is **rejected with 422**,
  the old version keeps serving with zero failed requests, and a
  subsequently published clean artifact passes the same gate and swaps
  normally.  All of this is gated, never advisory.

Run with ``PYTHONPATH=src python benchmarks/bench_gateway.py``; CI runs
``--smoke`` (small request counts, throughput ratio advisory — shared
runners jitter; the zero-failure gate still fails the script).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_rows, publish  # noqa: E402
from snapshot import emit_snapshot  # noqa: E402

from repro.core.log import QueryLog  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.gateway import Gateway, GatewayConfig, make_gateway_server  # noqa: E402
from repro.obs.prometheus import parse_exposition  # noqa: E402
from repro.serving import ArtifactStore  # noqa: E402
from repro.serving.http_server import make_server  # noqa: E402

TENANTS = ("mas", "yelp", "imdb")
NLQS = {
    "mas": "return the papers after 2000",
    "yelp": "return the businesses",
    "imdb": "return the movies",
}
#: One gateway process must keep at least this share of the separate
#: servers' aggregate throughput (routing overhead budget).
CONSOLIDATION_TARGET = 0.5


def _post(port: int, path: str, payload: dict, timeout: float = 30.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _scrape(port: int, timeout: float = 30.0) -> tuple[str, str]:
    """(content_type, body) of a live server's ``/metrics`` page."""
    url = f"http://127.0.0.1:{port}/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def check_exposition(content_type: str, body: str) -> list[str]:
    """Validation failures of one scraped exposition page (empty = ok)."""
    problems = []
    if not content_type.startswith("text/plain; version=0.0.4"):
        problems.append(f"unexpected /metrics content type {content_type!r}")
    try:
        metrics = parse_exposition(body)
    except ValueError as exc:
        return problems + [f"/metrics page does not parse: {exc}"]
    tenant_series = [
        labels
        for labels, _ in metrics.get("repro_requests_total", [])
        if "tenant" in labels
    ]
    if not tenant_series:
        problems.append(
            "no tenant-labelled repro_requests_total series on the page"
        )
    for name, series in metrics.items():
        if not name.endswith("_bucket"):
            continue
        by_key: dict[tuple, list[tuple[float, float]]] = {}
        for labels, value in series:
            rest = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            le = float(labels.get("le", "inf"))  # float('+Inf') parses
            by_key.setdefault(rest, []).append((le, value))
        for key, buckets in by_key.items():
            counts = [count for _, count in sorted(buckets)]
            if counts != sorted(counts):
                problems.append(
                    f"non-monotonic cumulative buckets in {name}{dict(key)}"
                )
    return problems


def _serve(server) -> threading.Thread:
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def _drive(targets: list[tuple[int, str, dict]], threads_per_target: int,
           requests_per_thread: int) -> tuple[float, int]:
    """Aggregate qps + failure count for concurrent clients on `targets`."""
    failures = [0]
    lock = threading.Lock()

    def client(port: int, path: str, payload: dict) -> None:
        for _ in range(requests_per_thread):
            try:
                status, _ = _post(port, path, payload)
                if status != 200:
                    raise RuntimeError(f"status {status}")
            except Exception:  # noqa: BLE001 - tallied, not raised
                with lock:
                    failures[0] += 1

    workers = [
        threading.Thread(target=client, args=target)
        for target in targets
        for _ in range(threads_per_target)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    total = len(workers) * requests_per_thread
    return total / elapsed, failures[0]


def bench_consolidation(store_root: Path, threads_per_tenant: int,
                        requests_per_thread: int):
    """(gateway qps, separate-servers qps, failures) on identical traffic."""
    config = GatewayConfig.from_dict({
        "tenants": {
            name: {"engine": {
                "dataset": name,
                "log_source": "artifacts",
                "artifacts": str(store_root),
            }}
            for name in TENANTS
        },
    })

    with Gateway.from_config(config) as gateway:
        server = make_gateway_server(gateway, port=0)
        _serve(server)
        port = server.server_address[1]
        targets = [
            (port, f"/t/{name}/translate", {"nlq": NLQS[name]})
            for name in TENANTS
        ]
        # Warm pass so both sides measure steady-state serving.
        _drive(targets, 1, 2)
        gateway_qps, gateway_failures = _drive(
            targets, threads_per_tenant, requests_per_thread
        )
        # Scrape while the tenants are live and have served traffic, so
        # the page carries tenant-labelled histograms worth validating.
        scrape = _scrape(port)
        server.shutdown()

    separate_servers = []
    targets = []
    from repro.api import Engine, EngineConfig

    for name in TENANTS:
        engine = Engine.from_config(EngineConfig(
            dataset=name, log_source="artifacts", artifacts=str(store_root),
        ))
        server = make_server(engine=engine, port=0)
        _serve(server)
        separate_servers.append((server, engine))
        targets.append(
            (server.server_address[1], "/translate", {"nlq": NLQS[name]})
        )
    _drive(targets, 1, 2)
    separate_qps, separate_failures = _drive(
        targets, threads_per_tenant, requests_per_thread
    )
    for server, engine in separate_servers:
        server.shutdown()
        engine.close()
    return (
        gateway_qps, separate_qps,
        gateway_failures + separate_failures, scrape,
    )


def bench_reload_blackout(store_root: Path, client_threads: int,
                          seconds: float):
    """Hammer one tenant through a mid-load publish + reload.

    Returns (results, reload_info): results are per-request
    (ok, version, latency_seconds, monotonic_time) tuples; reload_info
    carries the versions and the swap timestamps.
    """
    dataset = load_dataset("mas")
    store = ArtifactStore(store_root)
    config = GatewayConfig.from_dict({
        "tenants": {"mas": {"engine": {
            "dataset": "mas",
            "log_source": "artifacts",
            "artifacts": str(store_root),
        }, "max_in_flight": 4 * client_threads}},
    })
    with Gateway.from_config(config) as gateway:
        server = make_gateway_server(gateway, port=0)
        _serve(server)
        port = server.server_address[1]
        old_version = gateway.host("mas").artifact_version

        results: list[tuple[bool, str | None, float, float]] = []
        lock = threading.Lock()
        stop = threading.Event()

        def hammer() -> None:
            payload = {"nlq": NLQS["mas"]}
            while not stop.is_set():
                begun = time.perf_counter()
                try:
                    _, body = _post(port, "/t/mas/translate", payload)
                    entry = (
                        True,
                        body["provenance"].get("artifact_version"),
                        time.perf_counter() - begun,
                        begun,
                    )
                except Exception:  # noqa: BLE001 - a failure IS the result
                    entry = (False, None, time.perf_counter() - begun, begun)
                with lock:
                    results.append(entry)

        workers = [
            threading.Thread(target=hammer) for _ in range(client_threads)
        ]
        for worker in workers:
            worker.start()
        time.sleep(seconds / 2)

        # Publish a new version mid-load, then hot-swap onto it.
        log = QueryLog(
            [item.gold_sql for item in dataset.usable_items()]
            + ["SELECT name FROM author WHERE name = 'bench'"]
        )
        new_version = store.compile(dataset, log).version
        reload_started = time.perf_counter()
        _post(port, "/admin/reload", {"tenant": "mas"})
        reload_ended = time.perf_counter()

        time.sleep(seconds / 2)
        stop.set()
        for worker in workers:
            worker.join(30.0)
        server.shutdown()

    return results, {
        "old": old_version,
        "new": new_version,
        "reload_started": reload_started,
        "reload_ended": reload_ended,
    }


def bench_canary_gate(root: Path, client_threads: int) -> dict:
    """Degraded artifact blocked, old version serves on, clean one swaps.

    Uses its own artifact store and journal so the phase is independent
    of the other benchmarks' stores.  The degraded artifact is the MAS
    QFG compiled from only the first three log statements — enough to
    still translate, wrong enough that replayed traffic diverges.
    """
    dataset = load_dataset("mas")
    store = ArtifactStore(root / "canary-store")
    clean_version = store.compile(dataset).version
    config = GatewayConfig.from_dict({
        "tenants": {"mas": {"engine": {
            "dataset": "mas",
            "log_source": "artifacts",
            "artifacts": str(root / "canary-store"),
        }, "max_in_flight": 4 * client_threads}},
        "journal_dir": str(root / "canary-journal"),
        "canary_requests": 16,
        "canary_divergence": 0.2,
    })
    outcome: dict = {"failures": []}
    with Gateway.from_config(config) as gateway:
        server = make_gateway_server(gateway, port=0)
        _serve(server)
        port = server.server_address[1]

        # Seed the journal with traffic the canary will replay; the
        # papers-after-2000 NLQ is the one a truncated-log QFG gets
        # wrong (join ranking collapses without log evidence).
        for _ in range(12):
            _post(port, "/t/mas/translate", {"nlq": NLQS["mas"]})
        for nlq in ("number of papers", "conferences with papers"):
            for _ in range(2):
                _post(port, "/t/mas/translate", {"nlq": nlq})

        degraded_log = QueryLog(
            [item.gold_sql for item in dataset.usable_items()][:3]
        )
        degraded_version = store.compile(dataset, degraded_log).version

        stop = threading.Event()
        hammer_failures = [0]
        lock = threading.Lock()

        def hammer() -> None:
            while not stop.is_set():
                try:
                    status, _ = _post(
                        port, "/t/mas/translate", {"nlq": NLQS["mas"]}
                    )
                    if status != 200:
                        raise RuntimeError(f"status {status}")
                except Exception:  # noqa: BLE001 - tallied, not raised
                    with lock:
                        hammer_failures[0] += 1

        workers = [
            threading.Thread(target=hammer) for _ in range(client_threads)
        ]
        for worker in workers:
            worker.start()

        blocked_status = None
        blocked_message = ""
        try:
            blocked_status, _ = _post(port, "/admin/reload", {"tenant": "mas"})
        except urllib.error.HTTPError as error:
            blocked_status = error.code
            blocked_message = json.loads(error.read()).get("error", "")
        if blocked_status != 422:
            outcome["failures"].append(
                f"degraded reload answered {blocked_status}, expected a "
                f"422 canary rejection"
            )
        elif "canary blocked" not in blocked_message:
            outcome["failures"].append(
                f"422 reload error does not mention the canary: "
                f"{blocked_message!r}"
            )
        serving = gateway.host("mas").artifact_version
        if serving != clean_version:
            outcome["failures"].append(
                f"after the blocked reload the tenant serves {serving}, "
                f"expected the old version {clean_version}"
            )

        # A clean republish (same log plus one benign statement) must
        # pass the very same gate and swap.
        clean_log = QueryLog(
            [item.gold_sql for item in dataset.usable_items()]
            + ["SELECT name FROM author WHERE name = 'canary'"]
        )
        new_version = store.compile(dataset, clean_log).version
        status, body = _post(port, "/admin/reload", {"tenant": "mas"})
        canary = (body.get("reloads") or [{}])[0].get("canary") or {}
        if status != 200 or not canary.get("passed"):
            outcome["failures"].append(
                f"clean reload did not pass the canary: status {status}, "
                f"canary {canary}"
            )
        if gateway.host("mas").artifact_version != new_version:
            outcome["failures"].append(
                f"clean reload did not swap to {new_version}"
            )

        stop.set()
        for worker in workers:
            worker.join(30.0)
        if hammer_failures[0]:
            outcome["failures"].append(
                f"{hammer_failures[0]} failed requests while the canary "
                f"evaluated (acceptance requires zero)"
            )
        stats = gateway.stats()["aggregate"]
        outcome.update({
            "old_version": clean_version,
            "degraded_version": degraded_version,
            "new_version": new_version,
            "blocked_status": blocked_status,
            "clean_canary": canary,
            "canary_passed": stats["canary_passed"],
            "canary_blocked": stats["canary_blocked"],
            "hammer_failures": hammer_failures[0],
        })
        server.shutdown()
    return outcome


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny traffic volumes; the throughput ratio becomes advisory "
             "(the zero-failed-requests gate stays hard)",
    )
    parser.add_argument(
        "--canary-only", action="store_true",
        help="run only the shadow-canary reload gate (every canary check "
             "is hard); exits 0 iff the degraded artifact is blocked under "
             "live load and the clean one passes and swaps",
    )
    args = parser.parse_args()
    threads_per_tenant = 2 if args.smoke else 4
    requests_per_thread = 5 if args.smoke else 40
    hammer_seconds = 1.0 if args.smoke else 4.0

    if args.canary_only:
        with tempfile.TemporaryDirectory() as tmp:
            canary = bench_canary_gate(
                Path(tmp), client_threads=threads_per_tenant
            )
        for failure in canary["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        if not canary["failures"]:
            print(
                f"PASS: canary blocked the degraded artifact "
                f"({canary['blocked_status']}), passed the clean one "
                f"(divergence {canary['clean_canary'].get('divergence')}), "
                f"{canary['hammer_failures']} failed during the gate"
            )
        return 1 if canary["failures"] else 0

    with tempfile.TemporaryDirectory() as tmp:
        store_root = Path(tmp)
        store = ArtifactStore(store_root)
        for name in TENANTS:
            store.compile(load_dataset(name))

        gateway_qps, separate_qps, transport_failures, scrape = (
            bench_consolidation(
                store_root, threads_per_tenant, requests_per_thread
            )
        )
        results, reload_info = bench_reload_blackout(
            store_root, client_threads=threads_per_tenant,
            seconds=hammer_seconds,
        )
        canary = bench_canary_gate(
            store_root, client_threads=threads_per_tenant
        )

    failed = [entry for entry in results if not entry[0]]
    versions = {entry[1] for entry in results if entry[0]}
    swap_window = [
        entry for entry in results
        if reload_info["reload_started"] - 0.1
        <= entry[3] <= reload_info["reload_ended"] + 0.5
    ]
    blackout_ms = max(
        (entry[2] for entry in swap_window), default=0.0
    ) * 1000.0
    steady = sorted(entry[2] for entry in results)
    p50_ms = steady[len(steady) // 2] * 1000.0 if steady else 0.0
    ratio = gateway_qps / separate_qps if separate_qps else 0.0

    rows = [
        ["3 separate single-engine servers", f"{separate_qps:.0f} q/s", ""],
        ["one gateway, one port", f"{gateway_qps:.0f} q/s",
         f"{ratio:.2f}x of separate"],
        ["requests during reload hammer", str(len(results)),
         f"{len(failed)} failed"],
        ["versions served during swap",
         " -> ".join(str(v) for v in (reload_info["old"], reload_info["new"])),
         f"{len(versions)} distinct"],
        ["worst latency in swap window", f"{blackout_ms:.1f} ms",
         f"p50 steady {p50_ms:.1f} ms"],
        ["canary verdicts (blocked/passed)",
         f"{canary['canary_blocked']}/{canary['canary_passed']}",
         f"degraded rejected {canary['blocked_status']}, "
         f"{canary['hammer_failures']} failed during gate"],
    ]
    table = format_rows(["measure", "value", "note"], rows)
    publish(
        "gateway",
        f"Multi-tenant gateway: {len(TENANTS)} tenants, hot reload "
        f"{reload_info['old']} -> {reload_info['new']}",
        table,
    )

    hard_failures = []
    # Exposition validity is deterministic — always a hard gate.
    hard_failures.extend(check_exposition(*scrape))
    if failed or transport_failures:
        hard_failures.append(
            f"{len(failed) + transport_failures} failed requests "
            f"(acceptance requires zero, including during the hot swap)"
        )
    unexpected = versions - {reload_info["old"], reload_info["new"]}
    if unexpected:
        hard_failures.append(
            f"responses served from unexpected versions: {unexpected}"
        )
    if versions != {reload_info["old"], reload_info["new"]}:
        hard_failures.append(
            f"expected traffic on both {reload_info['old']} and "
            f"{reload_info['new']}, saw only {versions} (swap did not "
            f"happen mid-traffic; raise the hammer duration)"
        )
    # Canary acceptance is deterministic — always a hard gate.
    hard_failures.extend(canary["failures"])
    advisories = []
    if ratio < CONSOLIDATION_TARGET:
        message = (
            f"gateway throughput only {ratio:.2f}x of separate servers "
            f"(target {CONSOLIDATION_TARGET:.2f}x)"
        )
        (advisories if args.smoke else hard_failures).append(message)

    snapshot = emit_snapshot(
        "gateway",
        {
            "gateway_qps": round(gateway_qps, 1),
            "separate_qps": round(separate_qps, 1),
            "consolidation_ratio": round(ratio, 3),
            "blackout_ms": round(blackout_ms, 3),
            "steady_p50_ms": round(p50_ms, 3),
            "hammered_requests": len(results),
            "failed_requests": len(failed) + transport_failures,
            "canary_blocked": canary["canary_blocked"],
            "canary_passed": canary["canary_passed"],
            "canary_blocked_status": canary["blocked_status"],
            "canary_clean_divergence": canary["clean_canary"].get(
                "divergence"
            ),
            "canary_hammer_failures": canary["hammer_failures"],
        },
        config={
            "tenants": list(TENANTS),
            "threads_per_tenant": threads_per_tenant,
            "requests_per_thread": requests_per_thread,
            "hammer_seconds": hammer_seconds,
            "smoke": args.smoke,
        },
    )
    print(f"snapshot: {snapshot}")

    for failure in hard_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    for advisory in advisories:
        print(f"ADVISORY: {advisory} [not gating in --smoke]", file=sys.stderr)
    if not hard_failures:
        print(
            f"PASS: zero failed requests across {len(results)} hammered "
            f"({len(swap_window)} in the swap window), both versions "
            f"served, /metrics scrape parsed with tenant labels, "
            f"canary blocked the degraded artifact (422) and passed the "
            f"clean one with zero failures during the gate, "
            f"gateway at {ratio:.2f}x of separate servers"
        )
    return 1 if hard_failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
