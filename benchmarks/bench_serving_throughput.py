"""Serving-layer throughput and startup benchmarks.

Not part of the paper's evaluation; this regenerates the two acceptance
numbers of the serving subsystem:

* **startup** — loading compiled artifacts (deserialize + checksum
  verify) versus rebuilding the QFG from the raw query log, and
* **throughput** — warm-cache batched serving versus the cold
  single-query baseline, on the same workload.

Run with ``PYTHONPATH=src python benchmarks/bench_serving_throughput.py``.
Exits non-zero if either ratio falls below its target (load ≥ 10×,
warm batch ≥ 5×).  CI runs it as an advisory (non-blocking) step:
wall-clock ratios on shared runners jitter too much to gate merges, so
the authoritative check is running this locally on quiet hardware.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_rows, publish  # noqa: E402
from snapshot import emit_snapshot  # noqa: E402

from repro.core import QueryLog, Templar  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.embedding import CompositeModel  # noqa: E402
from repro.nlidb import PipelineNLIDB  # noqa: E402
from repro.serving import ArtifactStore, TranslationService  # noqa: E402

LOAD_TARGET = 10.0    # artifact load must beat the from-log rebuild by this
THROUGHPUT_TARGET = 5.0  # warm batch must beat cold single-query by this
REPEATS = 3


def _best(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time of ``fn`` (seconds)."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def bench_startup(dataset, log: QueryLog, store_root: Path):
    """(rebuild seconds, load seconds, ratio) for one dataset."""
    catalog = dataset.database.catalog
    rebuild_seconds = _best(lambda: log.build_qfg(catalog))

    store = ArtifactStore(store_root)
    store.compile(dataset, log)
    load_seconds = _best(lambda: store.load(dataset.name))
    return rebuild_seconds, load_seconds, rebuild_seconds / load_seconds


def bench_throughput(dataset, log: QueryLog):
    """(cold qps, warm qps, ratio) over the dataset's full workload."""
    database = dataset.database
    model = CompositeModel(dataset.lexicon)
    requests = [item.keywords for item in dataset.usable_items()]

    # Cold baseline: a fresh system translating one query at a time, the
    # way the evaluation harness does.
    cold_nlidb = PipelineNLIDB(database, model, Templar(database, model, log))
    started = time.perf_counter()
    for keywords in requests:
        cold_nlidb.translate(keywords)
    cold_seconds = time.perf_counter() - started
    cold_qps = len(requests) / cold_seconds

    # Warm path: the serving layer after one priming pass over the same
    # workload (caches populated, dedupe active).
    warm_nlidb = PipelineNLIDB(database, model, Templar(database, model, log))
    with TranslationService(warm_nlidb, cache_size=4096, max_workers=4) as service:
        service.warm(requests)
        started = time.perf_counter()
        service.translate_batch(requests)
        warm_seconds = time.perf_counter() - started
    warm_qps = len(requests) / warm_seconds
    return cold_qps, warm_qps, warm_qps / cold_qps


def main() -> int:
    dataset = load_dataset("mas")
    log = QueryLog([item.gold_sql for item in dataset.usable_items()])

    with tempfile.TemporaryDirectory() as tmp:
        rebuild_s, load_s, load_ratio = bench_startup(dataset, log, Path(tmp))
    cold_qps, warm_qps, qps_ratio = bench_throughput(dataset, log)

    rows = [
        ["startup: QFG rebuild from log", f"{rebuild_s * 1000:.2f} ms", ""],
        ["startup: artifact load (verified)", f"{load_s * 1000:.2f} ms",
         f"{load_ratio:.1f}x faster"],
        ["serving: cold single-query", f"{cold_qps:.1f} q/s", ""],
        ["serving: warm-cache batch", f"{warm_qps:.1f} q/s",
         f"{qps_ratio:.1f}x faster"],
    ]
    table = format_rows(["operation", "measured", "speedup"], rows)
    publish(
        "serving_throughput",
        f"Serving subsystem: MAS workload ({len(log)} queries)",
        table,
    )

    snapshot = emit_snapshot(
        "serving_throughput",
        {
            "rebuild_ms": round(rebuild_s * 1000, 3),
            "load_ms": round(load_s * 1000, 3),
            "load_ratio": round(load_ratio, 2),
            "cold_qps": round(cold_qps, 1),
            "warm_qps": round(warm_qps, 1),
            "throughput_ratio": round(qps_ratio, 2),
        },
        config={"workload": "mas", "queries": len(log), "repeats": REPEATS},
    )
    print(f"snapshot: {snapshot}")

    failures = []
    if load_ratio < LOAD_TARGET:
        failures.append(
            f"artifact load only {load_ratio:.1f}x faster than rebuild "
            f"(target {LOAD_TARGET:.0f}x)"
        )
    if qps_ratio < THROUGHPUT_TARGET:
        failures.append(
            f"warm batch only {qps_ratio:.1f}x cold baseline "
            f"(target {THROUGHPUT_TARGET:.0f}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"PASS: load {load_ratio:.1f}x (>= {LOAD_TARGET:.0f}x), "
            f"warm batch {qps_ratio:.1f}x (>= {THROUGHPUT_TARGET:.0f}x)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
