"""Table IV — improvement from activating log-based joins in Pipeline+.

Toggles the Join Path Generator's log-driven edge weights (LogJoin N vs
Y) while keeping log-driven keyword mapping on, exactly the ablation of
Section VII-B3.
"""

from _harness import PAPER_TABLE4, accuracy, dataset_names, format_rows, publish
from repro.eval import EvalConfig


def _run_table4() -> dict[tuple[str, str], float]:
    results = {}
    for dataset in dataset_names():
        for logjoin in ("N", "Y"):
            config = EvalConfig(use_log_joins=(logjoin == "Y"))
            _, fq = accuracy(dataset, "Pipeline+", config)
            results[(dataset, logjoin)] = fq
    return results


def test_table4_logjoin_ablation(benchmark):
    results = benchmark.pedantic(_run_table4, rounds=1, iterations=1)
    rows = [
        [dataset.upper(), logjoin, fq, PAPER_TABLE4[(dataset, logjoin)]]
        for (dataset, logjoin), fq in results.items()
    ]
    table = format_rows(["Dataset", "LogJoin", "FQ (%)", "paper"], rows)
    publish("table4", "Table IV — LogJoin ablation (Pipeline+)", table)

    for dataset in dataset_names():
        off = results[(dataset, "N")]
        on = results[(dataset, "Y")]
        assert on > off, f"{dataset}: log-driven joins must improve FQ"
