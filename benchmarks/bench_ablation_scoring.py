"""Evidence-combination ablation: linear λ-combination vs Dempster-Shafer.

Section V-C2 mentions Dempster-Shafer Theory as an alternative way to
combine word-similarity and log evidence; the paper opts for the linear
combination "due to its simplicity and because it works sufficiently well
in practice".  This bench quantifies that claim on the mini configuration
scoring level: both combiners must rank the log-supported configuration
first; the linear combiner is the reference.
"""

from _harness import accuracy, dataset_names, format_rows, publish
from repro.core.dempster import dempster_score
from repro.eval import EvalConfig


def _linear(sigma: float, dice: float, lam: float = 0.8) -> float:
    return lam * sigma + (1 - lam) * dice ** 0.5


def _run_comparison():
    """Agreement rate of the two combiners on synthetic evidence pairs,
    plus the full Pipeline+ accuracy under the default linear scheme."""
    scenarios = []
    # (sigma_right, dice_right, sigma_wrong, dice_wrong)
    for sigma_gap in (-0.02, -0.01, 0.0, 0.01, 0.02):
        for dice_right in (0.1, 0.2, 0.3, 0.4):
            scenarios.append((0.58 + sigma_gap, dice_right, 0.59, 0.0001))
    agree = 0
    linear_correct = 0
    dempster_correct = 0
    for sigma_r, dice_r, sigma_w, dice_w in scenarios:
        linear_picks_right = _linear(sigma_r, dice_r) > _linear(sigma_w, dice_w)
        dempster_picks_right = dempster_score(sigma_r, dice_r) > dempster_score(
            sigma_w, dice_w
        )
        agree += linear_picks_right == dempster_picks_right
        linear_correct += linear_picks_right
        dempster_correct += dempster_picks_right
    rows = [
        ["scenarios", len(scenarios)],
        ["linear picks log-supported", linear_correct],
        ["dempster picks log-supported", dempster_correct],
        ["combiner agreement", agree],
    ]
    fq = {}
    for dataset in dataset_names():
        _, fq[dataset] = accuracy(dataset, "Pipeline+", EvalConfig())
        rows.append([f"Pipeline+ FQ on {dataset} (linear)", fq[dataset]])
    return rows, linear_correct, dempster_correct, len(scenarios)


def test_scoring_ablation(benchmark):
    rows, linear_correct, dempster_correct, total = benchmark.pedantic(
        _run_comparison, rounds=1, iterations=1
    )
    table = format_rows(["quantity", "value"], rows)
    publish(
        "ablation_scoring",
        "Ablation — linear λ-combination vs Dempster-Shafer evidence",
        table,
    )
    # Both combiners must exploit log evidence in the vast majority of
    # near-tie scenarios (the paper's "works sufficiently well").
    assert linear_correct / total >= 0.9
    assert dempster_correct / total >= 0.9
