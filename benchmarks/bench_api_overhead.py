"""API-overhead benchmark: the Engine facade versus direct Templar calls.

The unified ``repro.api.Engine`` wraps every translation in request
normalization, a caching ``TranslationService``, stage timing and
response assembly.  That convenience must stay (close to) free: this
bench translates the same workload through a bare ``PipelineNLIDB`` and
through an Engine whose caches are cleared before every request (so each
call exercises the full uncached path, like the direct baseline), and
gates the facade's per-request overhead at < 5 %.

Run with ``PYTHONPATH=src python benchmarks/bench_api_overhead.py``.
``--smoke`` shrinks the workload for CI, where the step is advisory
(shared-runner wall clocks jitter); the authoritative check is a local
run on quiet hardware.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_rows, publish  # noqa: E402

from repro.api import Engine, EngineConfig  # noqa: E402
from repro.core import QueryLog, Templar  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.embedding import CompositeModel  # noqa: E402
from repro.nlidb import PipelineNLIDB  # noqa: E402

#: Maximum tolerated facade overhead on the uncached translate path.
OVERHEAD_LIMIT = 0.05

PASSES = 5


def bench_overhead(dataset_name: str, smoke: bool) -> tuple[float, float, float]:
    """(direct seconds, engine seconds, overhead fraction) on one dataset."""
    dataset = load_dataset(dataset_name)
    requests = [item.keywords for item in dataset.usable_items()]
    if smoke:
        requests = requests[:12]

    database = dataset.database
    model = CompositeModel(dataset.lexicon)
    log = QueryLog([item.gold_sql for item in dataset.usable_items()])
    direct = PipelineNLIDB(database, model, Templar(database, model, log))

    engine = Engine.from_config(EngineConfig(dataset=dataset_name))

    def run_direct() -> float:
        started = time.perf_counter()
        for keywords in requests:
            direct.translate(keywords)
        return time.perf_counter() - started

    def run_engine() -> float:
        # Clearing the caches before each request forces the full
        # translation path, making the comparison facade-vs-bare rather
        # than warm-cache-vs-cold.
        elapsed = 0.0
        for keywords in requests:
            engine.service.clear_caches()
            started = time.perf_counter()
            engine.translate(keywords)
            elapsed += time.perf_counter() - started
        return elapsed

    # Interleave passes so drift (thermal, page cache) hits both sides
    # evenly; score the best pass of each.
    direct_times, engine_times = [], []
    for _ in range(PASSES):
        direct_times.append(run_direct())
        engine_times.append(run_engine())
    engine.close()

    direct_best = min(direct_times)
    engine_best = min(engine_times)
    overhead = (engine_best - direct_best) / direct_best
    return direct_best, engine_best, overhead


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    datasets = ["mas"] if smoke else ["mas", "yelp", "imdb"]

    rows = []
    worst = float("-inf")
    for name in datasets:
        direct_s, engine_s, overhead = bench_overhead(name, smoke)
        worst = max(worst, overhead)
        rows.append([
            name.upper(),
            f"{direct_s * 1000:.1f}",
            f"{engine_s * 1000:.1f}",
            f"{overhead * 100:+.2f}%",
        ])

    table = format_rows(
        ["Dataset", "direct (ms)", "engine (ms)", "overhead"], rows
    )
    publish(
        "api_overhead",
        f"Engine facade overhead vs direct Templar/NLIDB calls "
        f"(uncached path, best of {PASSES}; limit {OVERHEAD_LIMIT:.0%})",
        table,
    )

    if worst > OVERHEAD_LIMIT:
        print(
            f"FAIL: worst-case facade overhead {worst:.2%} exceeds "
            f"{OVERHEAD_LIMIT:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"OK: worst-case facade overhead {worst:.2%} "
          f"(limit {OVERHEAD_LIMIT:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
