"""Engineering micro-benchmarks of the core operations.

Not part of the paper's evaluation; these keep the implementation honest
about the costs that matter in deployment: QFG construction from a log,
keyword mapping latency, Steiner-tree join inference, and full-text
search.
"""

import pytest

from repro.core import QueryLog, Templar
from repro.core.fragments import fragments_of_sql
from repro.core.qfg import QueryFragmentGraph
from repro.datasets import load_dataset
from repro.embedding.model import CompositeModel
from repro.schema_graph import JoinGraph, steiner_tree


@pytest.fixture(scope="module")
def mas():
    return load_dataset("mas")


@pytest.fixture(scope="module")
def mas_log(mas):
    return QueryLog([item.gold_sql for item in mas.usable_items()])


@pytest.fixture(scope="module")
def templar(mas, mas_log):
    return Templar(mas.database, CompositeModel(mas.lexicon), mas_log)


def test_perf_qfg_construction(benchmark, mas, mas_log):
    """Build the QFG from the full MAS log (~194 statements)."""
    graph = benchmark(mas_log.build_qfg, mas.database.catalog)
    assert graph.total_queries > 0


def test_perf_fragment_extraction(benchmark, mas):
    """Parse + bind + fragment one representative log statement."""
    sql = mas.usable_items()[0].gold_sql
    fragments = benchmark(fragments_of_sql, sql, mas.database.catalog)
    assert fragments


def test_perf_keyword_mapping(benchmark, mas, templar):
    """MAPKEYWORDS on a two-keyword NLQ."""
    item = next(i for i in mas.usable_items() if len(i.keywords) == 2)
    configs = benchmark(templar.map_keywords, item.keywords)
    assert configs


def test_perf_join_inference(benchmark, templar):
    """INFERJOINS across the publication-domain trap."""
    paths = benchmark(templar.infer_joins, ["publication", "domain"])
    assert paths


def test_perf_steiner_default(benchmark, mas):
    """Raw KMB Steiner solve on the MAS join graph."""
    graph = JoinGraph.from_catalog(mas.database.catalog)
    tree = benchmark(steiner_tree, graph, ["author", "domain", "conference"])
    assert tree is not None


def test_perf_fulltext_search(benchmark, mas):
    """Boolean-mode full-text probe over all searchable columns."""
    index = mas.database.fulltext
    hits = benchmark(index.search, ["query", "optimization"])
    assert hits


def test_perf_full_translation(benchmark, mas, templar):
    """End-to-end Pipeline+ translation of one NLQ."""
    from repro.nlidb import PipelineNLIDB

    system = PipelineNLIDB(mas.database, templar.similarity, templar)
    item = mas.usable_items()[0]
    results = benchmark(system.translate, item.keywords)
    assert results
