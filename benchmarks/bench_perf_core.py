"""Engineering micro-benchmarks of the core operations.

Not part of the paper's evaluation; these keep the implementation honest
about the costs that matter in deployment: QFG construction from a log,
keyword mapping latency, Steiner-tree join inference, and full-text
search.

Run directly (``PYTHONPATH=src python benchmarks/bench_perf_core.py``)
for the **baseline-vs-indexed MAPKEYWORDS comparison**: the seed
scan-everything/full-product mapper against the CandidateIndex + beam
path, on the full MAS workload, with configuration-level parity asserted
(bit-identical scores) and a ≥ 3x warm-path speedup gate.  Results land
in ``benchmarks/results/perf_core.txt`` and ``perf_core.json`` (the
README performance table is generated from the JSON).  ``--smoke``
shrinks the workload for CI, where the step is advisory.
"""

import json
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _harness import RESULTS_DIR, format_rows, publish  # noqa: E402
from snapshot import emit_snapshot  # noqa: E402

from repro.core import QueryLog, Templar
from repro.core.fragments import fragments_of_sql
from repro.core.keyword_mapper import KeywordMapper
from repro.core.qfg import QueryFragmentGraph
from repro.datasets import load_dataset
from repro.embedding.model import CompositeModel
from repro.schema_graph import JoinGraph, steiner_tree

#: Required warm-path speedup of indexed+beam MAPKEYWORDS over the seed.
SPEEDUP_GATE = 3.0

#: Maximum tracing overhead on the warm cached translate path (percent).
TRACING_OVERHEAD_GATE_PCT = 5.0

#: Maximum request-journal overhead on the warm serving wire path
#: (NLQ in, parse on every request, translate served from cache).
JOURNAL_OVERHEAD_GATE_PCT = 5.0

#: Maximum SLO-evaluator + drift-monitor overhead on the same warm wire
#: path.  The per-request bill is one DriftMonitor.observe (two bisects
#: + a memoized fragment digest under a lock); SLO evaluation itself is
#: scrape-cadence work and never runs on the request path.
SLO_OVERHEAD_GATE_PCT = 5.0

PASSES = 3


@pytest.fixture(scope="module")
def mas():
    return load_dataset("mas")


@pytest.fixture(scope="module")
def mas_log(mas):
    return QueryLog([item.gold_sql for item in mas.usable_items()])


@pytest.fixture(scope="module")
def templar(mas, mas_log):
    return Templar(mas.database, CompositeModel(mas.lexicon), mas_log)


def test_perf_qfg_construction(benchmark, mas, mas_log):
    """Build the QFG from the full MAS log (~194 statements)."""
    graph = benchmark(mas_log.build_qfg, mas.database.catalog)
    assert graph.total_queries > 0


def test_perf_fragment_extraction(benchmark, mas):
    """Parse + bind + fragment one representative log statement."""
    sql = mas.usable_items()[0].gold_sql
    fragments = benchmark(fragments_of_sql, sql, mas.database.catalog)
    assert fragments


def test_perf_keyword_mapping(benchmark, mas, templar):
    """MAPKEYWORDS on a two-keyword NLQ."""
    item = next(i for i in mas.usable_items() if len(i.keywords) == 2)
    configs = benchmark(templar.map_keywords, item.keywords)
    assert configs


def test_perf_join_inference(benchmark, templar):
    """INFERJOINS across the publication-domain trap."""
    paths = benchmark(templar.infer_joins, ["publication", "domain"])
    assert paths


def test_perf_steiner_default(benchmark, mas):
    """Raw KMB Steiner solve on the MAS join graph."""
    graph = JoinGraph.from_catalog(mas.database.catalog)
    tree = benchmark(steiner_tree, graph, ["author", "domain", "conference"])
    assert tree is not None


def test_perf_fulltext_search(benchmark, mas):
    """Boolean-mode full-text probe over all searchable columns."""
    index = mas.database.fulltext
    hits = benchmark(index.search, ["query", "optimization"])
    assert hits


def test_perf_full_translation(benchmark, mas, templar):
    """End-to-end Pipeline+ translation of one NLQ."""
    from repro.nlidb import PipelineNLIDB

    system = PipelineNLIDB(mas.database, templar.similarity, templar)
    item = mas.usable_items()[0]
    results = benchmark(system.translate, item.keywords)
    assert results


def test_perf_keyword_mapping_indexed(benchmark, mas, templar):
    """MAPKEYWORDS via the candidate index + beam (two-keyword NLQ)."""
    item = next(i for i in mas.usable_items() if len(i.keywords) == 2)
    templar.candidate_index  # build outside the timed region
    configs = benchmark(templar.map_keywords, item.keywords, 10)
    assert configs


# --------------------------------------------------------------------------
# Standalone mode: baseline-vs-indexed MAPKEYWORDS comparison
# --------------------------------------------------------------------------


def _best_of(fn, passes: int = PASSES) -> float:
    best = float("inf")
    for _ in range(passes):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_mapkeywords(smoke: bool) -> dict:
    """Seed vs indexed MAPKEYWORDS over the MAS workload, parity-checked."""
    dataset = load_dataset("mas")
    log = QueryLog([item.gold_sql for item in dataset.usable_items()])
    qfg = log.build_qfg(dataset.database.catalog)
    model = CompositeModel(dataset.lexicon)
    requests = [
        list(item.keywords) for item in dataset.usable_items() if item.keywords
    ]
    if smoke:
        requests = requests[:25]
    dataset.database.fulltext  # shared lazy structure, built up front

    seed = KeywordMapper(dataset.database, model, qfg=qfg, use_index=False)
    indexed = KeywordMapper(dataset.database, model, qfg=qfg)

    # Parity first: identical configurations and bit-identical scores on
    # the full ranking, and the beam prefix must equal the full prefix.
    for keywords in requests:
        full_seed = seed.map_keywords(keywords)
        full_indexed = indexed.map_keywords(keywords)
        assert full_indexed == full_seed, f"parity broken for {keywords}"
        assert indexed.map_keywords(keywords, limit=10) == full_seed[:10]

    cold_started = time.perf_counter()
    rebuilt = KeywordMapper(dataset.database, model, qfg=qfg)
    rebuilt.index
    index_build_s = time.perf_counter() - cold_started

    seed_s = _best_of(
        lambda: [seed.map_keywords(keywords) for keywords in requests]
    )
    warm_s = _best_of(
        lambda: [
            indexed.map_keywords(keywords, limit=10) for keywords in requests
        ]
    )
    return {
        "workload": "mas",
        "requests": len(requests),
        "index_build_ms": index_build_s * 1000.0,
        "seed_ms": seed_s * 1000.0,
        "indexed_ms": warm_s * 1000.0,
        "speedup": seed_s / warm_s,
        "per_request_seed_ms": seed_s * 1000.0 / len(requests),
        "per_request_indexed_ms": warm_s * 1000.0 / len(requests),
    }


def bench_engine(smoke: bool) -> dict:
    """Cold Engine build and warm cached translate on the MAS workload."""
    from repro.api import Engine, EngineConfig

    cold_started = time.perf_counter()
    engine = Engine.from_config(EngineConfig(dataset="mas"))
    cold_build_s = time.perf_counter() - cold_started

    requests = [
        list(item.keywords)
        for item in engine.dataset.usable_items()
        if item.keywords
    ]
    if smoke:
        requests = requests[:25]
    for keywords in requests:  # fill the caches
        engine.translate(keywords)
    warm_s = _best_of(
        lambda: [engine.translate(keywords) for keywords in requests]
    )
    engine.close()
    return {
        "cold_build_ms": cold_build_s * 1000.0,
        "warm_translate_us": warm_s * 1_000_000.0 / len(requests),
    }


def bench_tracing_overhead(smoke: bool) -> dict:
    """Warm cached-translate cost with tracing on vs off.

    The tracer defers both the sink allocation (lazy, first stage only)
    and all tree-building (tail-sampled) past the warm path, so a cache
    hit pays one ContextVar set/reset and a float comparison; this
    measures that claim.  Absolute deltas are sub-microsecond, so the
    estimator has to be deliberate about noise:

    * ONE engine, toggling ``tracer.enabled`` — the exact knob
      ``EngineConfig(tracing=False)`` sets — instead of two engine
      instances.  Separate instances differ in allocator layout and
      cache residency, which on a busy box dwarfs the effect measured.
    * Paired rounds: each round times both modes back to back, order
      alternating between rounds, so frequency drift hits both equally.
    * Long windows: each timed sample runs the full request sweep
      several times, so a millisecond scheduling blip is a few percent
      of the window instead of half of it.
    * The reported overhead is the *median* per-round ratio — a round
      polluted by a blip anyway skews one sample, not the estimate.
    """
    from repro.api import Engine, EngineConfig

    engine = Engine.from_config(EngineConfig(dataset="mas"))
    tracer = engine.service.tracer
    requests = [
        list(item.keywords)
        for item in engine.dataset.usable_items()
        if item.keywords
    ]
    if smoke:
        requests = requests[:25]
    for enabled in (True, False):  # fill caches + saturate trace store
        tracer.enabled = enabled
        for _ in range(2):
            for keywords in requests:
                engine.translate(keywords)
    best = {True: float("inf"), False: float("inf")}
    ratios = []
    rounds = 5 if smoke else max(7 * PASSES, 21)
    sweeps = 8
    for index in range(rounds):
        sample = {}
        # ABBA ordering: consecutive round pairs mirror each other, so
        # linear frequency drift cancels within every pair of rounds.
        order = (True, False) if index % 4 in (0, 3) else (False, True)
        for enabled in order:
            tracer.enabled = enabled
            started = time.perf_counter()
            for _ in range(sweeps):
                for keywords in requests:
                    engine.translate(keywords)
            sample[enabled] = time.perf_counter() - started
            best[enabled] = min(best[enabled], sample[enabled])
        ratios.append(sample[True] / sample[False])
    engine.close()
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    per_request = 1e6 / (sweeps * len(requests))
    return {
        "warm_traced_us": best[True] * per_request,
        "warm_untraced_us": best[False] * per_request,
        "tracing_overhead_pct": 100.0 * (median_ratio - 1.0),
    }


def bench_journal_overhead(smoke: bool) -> dict:
    """Warm serving cost with the request journal on vs off.

    The journal's *request-path* bill is one bounded-deque append of a
    pre-built row tuple plus a ``meta`` dict — serialization, rotation
    and writes all happen later, on the background writer thread.  Two
    measurements pin that claim down:

    * **The gated number** (``journal_overhead_pct``) is taken on the
      serving wire path: requests enter as NLQ strings, exactly as they
      arrive over HTTP.  The translate cache is keyed on canonicalized
      keywords, so parsing runs on *every* request and only the
      translate stage is served from cache — that is what a warm served
      request actually pays, and what the <= 5% regression budget
      protects.  Paired ABBA rounds with the ratio of per-mode median
      window times keep the estimate stable on noisy (virtualized,
      single-core) hosts.
    * **The informational number** (``journal_hit_delta_ns``) isolates
      the absolute per-request bill on the keyword fast path
      (pre-parsed programmatic callers, ~10 us/request), where a
      few-hundred-ns append is proportionally largest.  Whole-window
      timing cannot resolve it under scheduler jitter, so each request
      is timed individually and the per-request *minimum* over many
      paired reps is compared — timing noise on a preemptible host is
      strictly additive, so the floor is the least-noise estimate of
      the true cost (the same reasoning behind ``timeit``'s min).

    Bench hygiene, in both phases: the writer is parked on a very long
    flush interval and the queue is drained at round boundaries —
    *outside* the timed windows, so the serialization burst sits
    symmetrically between rounds — and the GC is paused inside the
    paired windows and run between rounds (in production the writer
    drains every 0.2 s and the queue stays near-empty; without this the
    gen-0 collections triggered by the bench-only retention would be
    billed to the request path).
    """
    import gc
    import tempfile

    from repro.api import Engine, EngineConfig
    from repro.obs.journal import RequestJournal

    engine = Engine.from_config(EngineConfig(dataset="mas"))
    service = engine.service
    items = [item for item in engine.dataset.usable_items() if item.keywords]
    if smoke:
        items = items[:25]
    nlqs = [item.nlq for item in items]
    keyword_requests = [list(item.keywords) for item in items]
    times = {True: [], False: []}
    floors = {
        True: [9e9] * len(keyword_requests),
        False: [9e9] * len(keyword_requests),
    }
    rounds = 5 if smoke else max(7 * PASSES, 21)
    floor_reps = 20 if smoke else 120
    with tempfile.TemporaryDirectory() as root:
        journal = RequestJournal(
            root,
            segment_bytes=64_000_000,
            segments=2,
            flush_interval=3600.0,
            max_queue=100_000,
        )
        for journaled in (True, False):  # fill the caches in both modes
            service.journal = journal if journaled else None
            for nlq in nlqs:
                engine.translate(nlq)
            for keywords in keyword_requests:
                engine.translate(keywords)
        journal.flush()
        gc_was_enabled = gc.isenabled()
        perf = time.perf_counter
        try:
            # Phase 1 — the gated wire-path ratio (NLQ in, parse every
            # request, translate from cache).
            for index in range(rounds):
                order = (
                    (True, False) if index % 4 in (0, 3) else (False, True)
                )
                gc.collect()
                gc.disable()
                for journaled in order:
                    service.journal = journal if journaled else None
                    started = perf()
                    for nlq in nlqs:
                        engine.translate(nlq)
                    times[journaled].append(perf() - started)
                if gc_was_enabled:
                    gc.enable()
                journal.flush()  # round boundary: outside both windows
            # Phase 2 — the informational keyword fast-path floor delta.
            gc.collect()
            gc.disable()
            for rep in range(floor_reps):
                order = (True, False) if rep % 4 in (0, 3) else (False, True)
                for journaled in order:
                    service.journal = journal if journaled else None
                    mins = floors[journaled]
                    for i, keywords in enumerate(keyword_requests):
                        started = perf()
                        engine.translate(keywords)
                        elapsed = perf() - started
                        if elapsed < mins[i]:
                            mins[i] = elapsed
                journal.flush()
                if rep % 40 == 39:
                    gc.enable()
                    gc.collect()
                    gc.disable()
        finally:
            if gc_was_enabled:
                gc.enable()
            service.journal = None
        dropped = journal.dropped
        journal.close()
    engine.close()
    assert dropped == 0, f"journal shed {dropped} records during the bench"
    median = lambda s: sorted(s)[len(s) // 2]  # noqa: E731
    median_ratio = median(times[True]) / median(times[False])
    per_request = 1e6 / len(nlqs)
    hit_delta_ns = (
        (sum(floors[True]) - sum(floors[False])) * 1e9 / len(keyword_requests)
    )
    return {
        "warm_journaled_us": median(times[True]) * per_request,
        "warm_unjournaled_us": median(times[False]) * per_request,
        "journal_overhead_pct": 100.0 * (median_ratio - 1.0),
        "journal_hit_delta_ns": hit_delta_ns,
    }


def bench_slo_overhead(smoke: bool) -> dict:
    """Warm serving cost with the SLO evaluator + drift monitor on vs off.

    Both features are scoped so the request path pays almost nothing:
    the SLO evaluator runs at scrape cadence (``/metrics``, ``stats()``)
    and never inside ``translate``; the drift monitor's per-request bill
    is ``DriftMonitor.observe`` — two histogram bisects and a memoized
    fragment-key digest under one lock.  Same estimator discipline as
    :func:`bench_journal_overhead`: one engine, toggling the exact
    attributes the config knobs set, paired ABBA rounds on the NLQ wire
    path, median per-round ratio, GC paused inside the windows.
    """
    import gc

    from repro.api import Engine, EngineConfig
    from repro.obs.slo import SLOPolicy

    engine = Engine.from_config(EngineConfig(
        dataset="mas",
        slo=SLOPolicy(
            latency_p99_ms=500.0, error_rate=0.05, cache_hit_rate=0.5,
            feedback_reject_rate=0.3,
        ),
        drift_threshold=0.35,
    ))
    service = engine.service
    evaluator, drift = service.slo_evaluator, service.drift
    assert evaluator is not None and drift is not None
    nlqs = [
        item.nlq for item in engine.dataset.usable_items() if item.keywords
    ]
    if smoke:
        nlqs = nlqs[:25]
    for monitored in (True, False):  # fill caches in both modes
        service.slo_evaluator = evaluator if monitored else None
        service.drift = drift if monitored else None
        for nlq in nlqs:
            engine.translate(nlq)
    times = {True: [], False: []}
    rounds = 5 if smoke else max(7 * PASSES, 21)
    sweeps = 4
    gc_was_enabled = gc.isenabled()
    perf = time.perf_counter
    try:
        for index in range(rounds):
            order = (True, False) if index % 4 in (0, 3) else (False, True)
            gc.collect()
            gc.disable()
            for monitored in order:
                service.slo_evaluator = evaluator if monitored else None
                service.drift = drift if monitored else None
                started = perf()
                for _ in range(sweeps):
                    for nlq in nlqs:
                        engine.translate(nlq)
                times[monitored].append(perf() - started)
            if gc_was_enabled:
                gc.enable()
            # Scrape-cadence work happens here, between rounds — exactly
            # where production pays it (the /metrics handler's thread).
            service.sync_observability_counters()
    finally:
        if gc_was_enabled:
            gc.enable()
        service.slo_evaluator = evaluator
        service.drift = drift
    engine.close()
    median = lambda s: sorted(s)[len(s) // 2]  # noqa: E731
    median_ratio = median(times[True]) / median(times[False])
    per_request = 1e6 / (sweeps * len(nlqs))
    return {
        "warm_monitored_us": median(times[True]) * per_request,
        "warm_unmonitored_us": median(times[False]) * per_request,
        "slo_overhead_pct": 100.0 * (median_ratio - 1.0),
    }


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    # Parity assertions inside bench_mapkeywords always hard-fail; the
    # wall-clock speedup gate alone becomes advisory with this flag
    # (shared CI runners jitter, local quiet hardware is authoritative).
    advisory_speedup = "--advisory-speedup" in argv
    result = bench_mapkeywords(smoke)
    result.update(bench_engine(smoke))
    result.update(bench_tracing_overhead(smoke))
    result.update(bench_journal_overhead(smoke))
    result.update(bench_slo_overhead(smoke))

    rows = [[
        result["workload"].upper(),
        str(result["requests"]),
        f"{result['seed_ms']:.1f}",
        f"{result['indexed_ms']:.1f}",
        f"{result['index_build_ms']:.1f}",
        f"{result['speedup']:.1f}x",
    ]]
    table = format_rows(
        [
            "Workload", "requests", "seed (ms)", "indexed (ms)",
            "index build (ms)", "speedup",
        ],
        rows,
    )
    publish(
        "perf_core",
        f"MAPKEYWORDS: seed scan+product vs CandidateIndex+beam "
        f"(best of {PASSES}, parity asserted; gate >= {SPEEDUP_GATE:.0f}x)",
        table,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "perf_core.json").write_text(json.dumps(result, indent=1))
    snapshot = emit_snapshot(
        "perf_core",
        {
            key: round(result[key], 3)
            for key in (
                "seed_ms", "indexed_ms", "index_build_ms", "speedup",
                "cold_build_ms", "warm_translate_us", "warm_traced_us",
                "warm_untraced_us", "tracing_overhead_pct",
                "warm_journaled_us", "warm_unjournaled_us",
                "journal_overhead_pct", "journal_hit_delta_ns",
                "warm_monitored_us", "warm_unmonitored_us",
                "slo_overhead_pct",
            )
        },
        config={
            "workload": result["workload"],
            "requests": result["requests"],
            "passes": PASSES,
            "smoke": smoke,
        },
    )
    print(f"snapshot: {snapshot}")

    failed = False
    if result["speedup"] < SPEEDUP_GATE:
        print(
            f"{'NOTE' if advisory_speedup else 'FAIL'}: warm-path speedup "
            f"{result['speedup']:.1f}x is below the {SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        failed = failed or not advisory_speedup
    if result["tracing_overhead_pct"] > TRACING_OVERHEAD_GATE_PCT:
        # Same advisory escape hatch as the speedup gate: µs-scale warm
        # paths jitter on shared CI runners; quiet hardware decides.
        print(
            f"{'NOTE' if advisory_speedup else 'FAIL'}: tracing overhead "
            f"{result['tracing_overhead_pct']:.1f}% exceeds the "
            f"{TRACING_OVERHEAD_GATE_PCT:.0f}% gate",
            file=sys.stderr,
        )
        failed = failed or not advisory_speedup
    if result["journal_overhead_pct"] > JOURNAL_OVERHEAD_GATE_PCT:
        print(
            f"{'NOTE' if advisory_speedup else 'FAIL'}: journal overhead "
            f"{result['journal_overhead_pct']:.1f}% exceeds the "
            f"{JOURNAL_OVERHEAD_GATE_PCT:.0f}% gate",
            file=sys.stderr,
        )
        failed = failed or not advisory_speedup
    if result["slo_overhead_pct"] > SLO_OVERHEAD_GATE_PCT:
        print(
            f"{'NOTE' if advisory_speedup else 'FAIL'}: SLO+drift overhead "
            f"{result['slo_overhead_pct']:.1f}% exceeds the "
            f"{SLO_OVERHEAD_GATE_PCT:.0f}% gate",
            file=sys.stderr,
        )
        failed = failed or not advisory_speedup
    if failed:
        return 1
    print(
        f"OK: warm-path speedup {result['speedup']:.1f}x "
        f"(gate {SPEEDUP_GATE:.0f}x), tracing overhead "
        f"{result['tracing_overhead_pct']:+.1f}% "
        f"(gate {TRACING_OVERHEAD_GATE_PCT:.0f}%), journal overhead "
        f"{result['journal_overhead_pct']:+.1f}% "
        f"(gate {JOURNAL_OVERHEAD_GATE_PCT:.0f}%, "
        f"hit delta {result['journal_hit_delta_ns']:+.0f} ns), "
        f"SLO+drift overhead {result['slo_overhead_pct']:+.1f}% "
        f"(gate {SLO_OVERHEAD_GATE_PCT:.0f}%), "
        f"parity held on {result['requests']} requests"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
