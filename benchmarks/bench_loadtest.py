"""Gateway load test: fuzz-generated traffic against live SLOs.

Not part of the paper's evaluation; this closes the loop between the
adversarial workload generator and the SLO engine.  A multi-tenant
gateway (mas + wide, with a gateway-default SLO policy) is hammered at
high client concurrency with:

* the deterministic fuzz case stream (``repro.fuzz.case_stream`` — the
  same seed-driven trace the differential fuzzer checks, Zipf-skewed
  hot keys, mutation plans applied), and
* every committed regression corpus case under ``tests/corpus/``.

Each response's latency lands in a per-tenant histogram; afterwards the
live ``GET /slo`` endpoint is scraped and the run **passes only if no
objective is alerting and no request failed at the transport level**
(4xx translation rejections are legitimate results for adversarial
cases — they feed the error-rate objective instead of failing the run).
Results land in ``BENCH_loadtest.json``.

Run with ``PYTHONPATH=src python benchmarks/bench_loadtest.py``; CI runs
``--smoke`` (fewer cases, same hard gates).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_rows, publish  # noqa: E402
from snapshot import emit_snapshot  # noqa: E402

import random  # noqa: E402

from repro.datasets import load_dataset  # noqa: E402
from repro.fuzz import build_pool, case_stream, load_corpus, synonym_map  # noqa: E402
from repro.gateway import Gateway, GatewayConfig, make_gateway_server  # noqa: E402
from repro.obs.histogram import Histogram  # noqa: E402
from repro.serving.wire import keyword_to_dict  # noqa: E402

WORKLOADS = ("mas", "wide")

#: Latency bucket upper bounds, milliseconds.
LATENCY_BOUNDS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
    2000.0, 5000.0,
)

#: The gateway-default policy every tenant is held to during the run.
#: Latency is the meaningful gate (alerts when >6% of requests in both
#: windows exceed the objective); the objective is sized for the wide
#: 100+-table workload under full client concurrency on a shared CI
#: runner — cold Steiner solves on unique fuzz cases own the tail.  The
#: error budget is sized for adversarial traffic, where translation
#: rejections are expected results.
SLO_POLICY = {
    "latency_p99_ms": 3000.0,
    "error_rate": 0.45,
}

CORPUS_DIR = Path(__file__).resolve().parent.parent / "tests" / "corpus"


def _post(port: int, path: str, payload: dict, timeout: float = 60.0) -> int:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        response.read()
        return response.status


def build_requests(seed: int, count: int) -> list[tuple[str, dict]]:
    """(tenant, wire payload) pairs: fuzz stream + committed corpus."""
    rng = random.Random(seed)
    datasets = {name: load_dataset(name) for name in WORKLOADS}
    synonyms = {
        name: synonym_map(dataset.lexicon)
        for name, dataset in datasets.items()
    }
    pools = {
        name: build_pool(rng, name, dataset.usable_items())
        for name, dataset in sorted(datasets.items())
    }
    cases = list(case_stream(seed, count, pools))
    for entry in load_corpus(CORPUS_DIR):
        if entry.case.tenant in datasets:
            cases.append(entry.case)
    requests = []
    for case in cases:
        keywords = [
            keyword_to_dict(k)
            for k in case.mutated_keywords(synonyms[case.workload])
        ]
        requests.append(
            (case.tenant, {"keywords": keywords, "limit": case.limit})
        )
    return requests


def drive(port: int, requests: list[tuple[str, dict]], threads: int) -> dict:
    """Concurrent replay; per-tenant latency/status tallies."""
    tenants = sorted({tenant for tenant, _ in requests})
    state = {
        tenant: {
            "histogram": Histogram(LATENCY_BOUNDS_MS),
            "latencies_ms": [],
            "ok": 0,
            "rejected": 0,
            "transport_failures": 0,
        }
        for tenant in tenants
    }
    lock = threading.Lock()
    cursor = [0]

    def worker() -> None:
        while True:
            with lock:
                index = cursor[0]
                if index >= len(requests):
                    return
                cursor[0] = index + 1
            tenant, payload = requests[index]
            begun = time.perf_counter()
            try:
                _post(port, f"/t/{tenant}/translate", payload)
                outcome = "ok"
            except urllib.error.HTTPError as error:
                error.read()
                # Adversarial cases legitimately fail translation; only
                # server-side breakage (5xx) is a transport failure.
                outcome = (
                    "rejected" if 400 <= error.code < 500
                    else "transport_failures"
                )
            except Exception:  # noqa: BLE001 - tallied, not raised
                outcome = "transport_failures"
            elapsed_ms = (time.perf_counter() - begun) * 1000.0
            with lock:
                tally = state[tenant]
                tally[outcome] = tally[outcome] + 1
                tally["histogram"].record(elapsed_ms)
                tally["latencies_ms"].append(elapsed_ms)
    workers = [threading.Thread(target=worker) for _ in range(threads)]
    started = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    elapsed = time.perf_counter() - started
    return {"tenants": state, "elapsed_seconds": elapsed}


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer cases for CI; the SLO and transport gates stay hard",
    )
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--cases", type=int, default=None)
    args = parser.parse_args()
    threads = args.threads or (8 if args.smoke else 16)
    count = args.cases or (120 if args.smoke else 600)

    requests = build_requests(args.seed, count)
    config = GatewayConfig.from_dict({
        "tenants": {
            name: {"engine": {"dataset": name}, "max_in_flight": 4 * threads}
            for name in WORKLOADS
        },
        "slo": dict(SLO_POLICY),
    })
    with Gateway.from_config(config) as gateway:
        http_server = make_gateway_server(gateway, port=0)
        serve_thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        serve_thread.start()
        port = http_server.server_address[1]

        # Warm pass over a slice so cold build cost stays out of the
        # measured latencies.
        drive(port, requests[: min(20, len(requests))], threads=4)
        outcome = drive(port, requests, threads=threads)

        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/slo", timeout=30
        ) as response:
            slo = json.loads(response.read())
        http_server.shutdown()

    tenants = outcome["tenants"]
    total = sum(
        t["ok"] + t["rejected"] + t["transport_failures"]
        for t in tenants.values()
    )
    transport_failures = sum(
        t["transport_failures"] for t in tenants.values()
    )
    qps = total / outcome["elapsed_seconds"] if outcome["elapsed_seconds"] else 0.0

    rows = []
    headline: dict = {
        "requests": total,
        "qps": round(qps, 1),
        "threads": threads,
        "transport_failures": transport_failures,
        "slo_alerting": bool(slo.get("alerting")),
    }
    per_tenant_json = {}
    for tenant, tally in sorted(tenants.items()):
        latencies = tally["latencies_ms"]
        p50 = percentile(latencies, 0.50)
        p99 = percentile(latencies, 0.99)
        report = slo["tenants"].get(tenant, {})
        alerting = bool(report.get("alerting"))
        rows.append([
            tenant,
            str(tally["ok"]),
            str(tally["rejected"]),
            str(tally["transport_failures"]),
            f"{p50:.1f}",
            f"{p99:.1f}",
            "ALERT" if alerting else "ok",
        ])
        headline[f"{tenant}_p50_ms"] = round(p50, 3)
        headline[f"{tenant}_p99_ms"] = round(p99, 3)
        headline[f"{tenant}_rejected"] = tally["rejected"]
        per_tenant_json[tenant] = {
            "latency_histogram_ms": tally["histogram"].to_dict(),
            "slo": report,
        }
    table = format_rows(
        ["tenant", "ok", "rejected", "transport", "p50 ms", "p99 ms", "slo"],
        rows,
    )
    publish(
        "loadtest",
        f"Fuzz-stream load test: {total} requests over {len(tenants)} "
        f"tenants at {threads} client threads ({qps:.0f} q/s)",
        table,
    )

    snapshot = emit_snapshot(
        "loadtest",
        headline,
        config={
            "seed": args.seed,
            "cases": count,
            "threads": threads,
            "workloads": list(WORKLOADS),
            "slo_policy": dict(SLO_POLICY),
            "smoke": args.smoke,
            "per_tenant": per_tenant_json,
        },
    )
    print(f"snapshot: {snapshot}")

    failures = []
    if transport_failures:
        failures.append(
            f"{transport_failures} transport-level failures "
            f"(acceptance requires zero)"
        )
    if slo.get("alerting"):
        burning = [
            tenant for tenant, report in slo["tenants"].items()
            if report.get("alerting")
        ]
        failures.append(f"SLO alerting for tenant(s): {', '.join(burning)}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"PASS: {total} requests, zero transport failures, "
            f"no SLO alerts (policy {SLO_POLICY})"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
