"""Control-plane acceptance benchmark: two replicas, one durable store.

Not part of the paper's evaluation; this regenerates the acceptance
numbers of the persistent control-plane subsystem:

* **durable hit latency** — a translation answered from the shared
  SQLite store (replica B serving a request replica A warmed) must cost
  no more than :data:`DURABLE_HIT_BUDGET` times an in-process LRU hit.
  Durable admission happens before parsing, so this is the whole
  HTTP-free request path both times.
* **zero duplicated learning** — two *separate gateway processes* share
  one store; an observed request served by replica A and idempotently
  retried against replica B (same ``Idempotency-Key``) must contribute
  exactly one observation across the fleet.  This is gated, never
  advisory.
* **cross-replica warmth and feedback** — a request warmed by replica A
  hits durably on replica B, and an accepted verdict submitted to B
  reaches A's QFG through its learning scheduler.

Run with ``PYTHONPATH=src python benchmarks/bench_controlplane.py``; CI
runs ``--smoke`` (fewer latency passes, the latency ratio becomes
advisory — shared runners jitter; the zero-duplication and
cross-replica gates stay hard).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import statistics
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_rows, publish  # noqa: E402
from snapshot import emit_snapshot  # noqa: E402

from repro.api import Engine, EngineConfig  # noqa: E402

NLQ_WARM = "return the papers after 2000"
NLQ_OBSERVED = "return the organizations"
#: Durable hits may cost at most this many in-process LRU hits.
DURABLE_HIT_BUDGET = 2.0
#: The two replica subprocesses share this much wall clock to come up.
READY_DEADLINE = 90.0
#: An accepted verdict submitted to one replica must reach the other
#: replica's QFG (via its learning scheduler) within this long.
PROPAGATION_DEADLINE = 30.0

_PORT_RE = re.compile(r"http://127\.0\.0\.1:(\d+)/")


def _post(port: int, path: str, payload: dict, headers: dict | None = None,
          timeout: float = 30.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(port: int, path: str, timeout: float = 30.0):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


# ------------------------------------------------------------ phase A


def bench_hit_latency(tmp: Path, passes: int):
    """(lru_hit_s, durable_hit_s) medians over ``passes`` warm repeats.

    The LRU side is an engine without a control plane (warm repeats hit
    the in-process result cache); the durable side is a *fresh* engine
    on a store another engine warmed, so every repeat is answered from
    SQLite — the cross-replica path, minus HTTP.
    """
    def timed(engine) -> list[float]:
        samples = []
        for _ in range(passes):
            begun = time.perf_counter()
            engine.translate(NLQ_WARM)
            samples.append(time.perf_counter() - begun)
        return samples

    with Engine.from_config(EngineConfig(dataset="mas")) as engine:
        engine.translate(NLQ_WARM)  # populate the LRU
        lru = timed(engine)

    store = str(tmp / "latency-cp.db")
    with Engine.from_config(
        EngineConfig(dataset="mas", control_plane_path=store)
    ) as warmer:
        warmer.translate(NLQ_WARM)  # replica A warms the store
    with Engine.from_config(
        EngineConfig(dataset="mas", control_plane_path=store)
    ) as replica:
        durable = timed(replica)  # replica B never computed this request
        provenance = replica.translate(NLQ_WARM).provenance
        if provenance.get("control_plane") != "durable":
            raise AssertionError(
                f"expected durable hits on the fresh replica, provenance "
                f"says {provenance.get('control_plane')!r}"
            )
    return statistics.median(lru), statistics.median(durable)


# ------------------------------------------------------------ phase B


class Replica:
    """One ``repro gateway`` subprocess bound to a shared store."""

    def __init__(self, name: str, config_path: Path) -> None:
        self.name = name
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "gateway",
             "--config", str(config_path), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.port = self._await_port()

    def _await_port(self) -> int:
        """Parse the bound port off the CLI's endpoint table."""
        found: list[int] = []

        def scan() -> None:
            for line in self.process.stdout:
                match = _PORT_RE.search(line)
                if match:
                    found.append(int(match.group(1)))
                    return

        scanner = threading.Thread(target=scan, daemon=True)
        scanner.start()
        scanner.join(READY_DEADLINE)
        if not found:
            raise RuntimeError(
                f"replica {self.name} printed no endpoint table within "
                f"{READY_DEADLINE:.0f}s: {self.process.stderr.read()[:2000]}"
            )
        return found[0]

    def await_ready(self, deadline: float) -> None:
        while time.monotonic() < deadline:
            try:
                status, _ = _get(self.port, "/readyz", timeout=5.0)
                if status == 200:
                    return
            except Exception:  # noqa: BLE001 - still warming up
                pass
            time.sleep(0.1)
        raise RuntimeError(f"replica {self.name} never became ready")

    def learning_total(self) -> int:
        """Pending observations + QFG totals: invariant under absorption."""
        _, stats = _get(self.port, "/t/mas/stats")
        engine = stats["engine"]
        return (
            engine["pending_observations"]
            + engine["qfg"]["total_queries"]
        )

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(15.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(15.0)
        self.process.stdout.close()
        self.process.stderr.close()


def _await_cache_row(store: Path, deadline: float = 10.0) -> None:
    """Wait for replica A's write-behind thread to land its cache row.

    The durable cache is written *behind* the response (the hot path
    never blocks on SQLite), so a request fired at replica B immediately
    after A's response races the flush.  Real cross-replica warmth is
    eventual; the bench waits for it explicitly instead of sleeping.
    """
    from repro.controlplane import ControlPlaneStore

    begun = time.monotonic()
    with ControlPlaneStore(store) as reader:
        while time.monotonic() - begun < deadline:
            if reader.stats()["rows"]["cache"]:
                return
            time.sleep(0.05)
    raise RuntimeError(
        f"replica A's durable cache write never landed within {deadline}s"
    )


def bench_two_replicas(tmp: Path):
    """Two gateway processes on one store: warmth, idempotency, feedback.

    Returns ``(duplicated, durable_cross, propagation_s)``: observations
    beyond the expected single one after an idempotent retry across
    replicas, whether B served A's warmed request durably, and how long
    an accepted verdict took to reach the *other* replica's QFG.
    """
    store = tmp / "fleet-cp.db"
    replicas = []
    for name in ("a", "b"):
        config = {
            "tenants": {"mas": {"engine": {"dataset": "mas"}}},
            "journal_dir": str(tmp / f"journal-{name}"),
            "control_plane_path": str(store),
            "learn_interval_seconds": 0.5,
            "learn_jitter": 0.0,
        }
        path = tmp / f"gateway-{name}.json"
        path.write_text(json.dumps(config))
        replicas.append(Replica(name, path))
    a, b = replicas
    try:
        deadline = time.monotonic() + READY_DEADLINE
        for replica in replicas:
            replica.await_ready(deadline)

        # --- cross-replica durable warmth -----------------------------
        _, warm = _post(a.port, "/t/mas/translate", {"nlq": NLQ_WARM})
        warm_request_id = warm["provenance"]["request_id"]
        _await_cache_row(store)  # replica A's write-behind flush
        _, echo = _post(b.port, "/t/mas/translate", {"nlq": NLQ_WARM})
        durable_cross = echo["provenance"].get("control_plane") == "durable"

        # --- idempotent retry across replicas -------------------------
        baseline = a.learning_total() + b.learning_total()
        body = {"nlq": NLQ_OBSERVED, "observe": True}
        headers = {"Idempotency-Key": "bench-retry-1"}
        _, first = _post(a.port, "/t/mas/translate", body, headers)
        _, retried = _post(b.port, "/t/mas/translate", body, headers)
        if not retried["provenance"].get("idempotent_replay"):
            raise AssertionError(
                f"the retry against replica b was not replayed: "
                f"{retried['provenance']}"
            )
        # pending + absorbed is invariant under the schedulers' ticks,
        # so this reads exactly 'observations contributed by the fleet'.
        duplicated = (
            a.learning_total() + b.learning_total() - baseline
        ) - 1

        # --- feedback reaches the *other* replica ---------------------
        before_a = a.learning_total()
        _, verdict = _post(
            b.port, "/t/mas/feedback",
            {"verdict": "accept", "request_id": warm_request_id},
        )
        if verdict["applied"] < 1:
            raise AssertionError(
                f"replica b did not apply its own accepted verdict: "
                f"{verdict}"
            )
        begun = time.monotonic()
        propagation_s = None
        while time.monotonic() - begun < PROPAGATION_DEADLINE:
            if a.learning_total() > before_a:
                propagation_s = time.monotonic() - begun
                break
            time.sleep(0.1)
        return duplicated, durable_cross, propagation_s, first
    finally:
        for replica in replicas:
            replica.stop()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer latency passes; the durable/LRU latency ratio becomes "
             "advisory (the zero-duplication and cross-replica gates stay "
             "hard)",
    )
    args = parser.parse_args()
    passes = 20 if args.smoke else 200

    with tempfile.TemporaryDirectory() as raw:
        tmp = Path(raw)
        lru_s, durable_s = bench_hit_latency(tmp, passes)
        duplicated, durable_cross, propagation_s, first = (
            bench_two_replicas(tmp)
        )

    ratio = durable_s / lru_s if lru_s else float("inf")
    rows = [
        ["in-process LRU hit", f"{lru_s * 1e6:.0f} us", f"{passes} passes"],
        ["durable hit (fresh replica)", f"{durable_s * 1e6:.0f} us",
         f"{ratio:.2f}x of LRU (budget {DURABLE_HIT_BUDGET:.1f}x)"],
        ["warmed request on replica B", "durable" if durable_cross else "MISS",
         "served from the shared store"],
        ["observations after cross-replica retry", str(1 + duplicated),
         "expected exactly 1"],
        ["accepted verdict reached replica A",
         f"{propagation_s:.2f} s" if propagation_s is not None else "NEVER",
         "via its learning scheduler"],
    ]
    table = format_rows(["measure", "value", "note"], rows)
    publish(
        "controlplane",
        "Two gateway replicas, one durable store: cache warmth, "
        "idempotent retries, feedback loop",
        table,
    )

    hard_failures = []
    advisories = []
    if duplicated != 0:
        hard_failures.append(
            f"idempotent retry across replicas duplicated learning: "
            f"{1 + duplicated} observations, acceptance requires exactly 1"
        )
    if not durable_cross:
        hard_failures.append(
            "replica B recomputed a request replica A had already warmed "
            "in the shared store"
        )
    if propagation_s is None:
        hard_failures.append(
            f"accepted feedback never reached the other replica's QFG "
            f"within {PROPAGATION_DEADLINE:.0f}s"
        )
    if first["provenance"].get("idempotent_replay"):
        hard_failures.append(
            "the first keyed request was itself a replay; the store was "
            "not fresh"
        )
    if ratio > DURABLE_HIT_BUDGET:
        message = (
            f"durable hits cost {ratio:.2f}x an LRU hit "
            f"(budget {DURABLE_HIT_BUDGET:.1f}x)"
        )
        (advisories if args.smoke else hard_failures).append(message)

    snapshot = emit_snapshot(
        "controlplane",
        {
            "lru_hit_us": round(lru_s * 1e6, 1),
            "durable_hit_us": round(durable_s * 1e6, 1),
            "durable_over_lru": round(ratio, 3),
            "duplicated_observations": duplicated,
            "cross_replica_durable_hit": durable_cross,
            "feedback_propagation_s": (
                round(propagation_s, 3) if propagation_s is not None else None
            ),
        },
        config={
            "passes": passes,
            "durable_hit_budget": DURABLE_HIT_BUDGET,
            "smoke": args.smoke,
        },
    )
    print(f"snapshot: {snapshot}")

    for failure in hard_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    for advisory in advisories:
        print(f"ADVISORY: {advisory} [not gating in --smoke]", file=sys.stderr)
    if not hard_failures:
        print(
            f"PASS: durable hits at {ratio:.2f}x of LRU, one observation "
            f"across an idempotent cross-replica retry, warmed request "
            f"served durably on the second replica, accepted feedback "
            f"propagated in {propagation_s:.2f}s"
        )
    return 1 if hard_failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
