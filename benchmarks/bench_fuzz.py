"""Fuzz-harness throughput benchmark + differential gate.

Runs the adversarial workload fuzzer (``src/repro/fuzz/``) for a fixed
seed and reports cases/sec across the four differential oracles.  Two
things are **hard-gated** (a failure exits non-zero, also under
``--smoke``):

* zero differential violations and zero unminimized crashes, and
* stream determinism — generating the same seed twice yields the same
  SHA-256 case-stream digest.

Throughput itself is informative only (wall clocks jitter on shared
runners).  The run emits ``BENCH_fuzz.json`` via ``snapshot.py`` so fuzz
throughput joins the tracked perf trajectory.

Run: ``PYTHONPATH=src python benchmarks/bench_fuzz.py [--smoke]``
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_rows, publish  # noqa: E402
from snapshot import emit_snapshot, read_snapshot, snapshot_path  # noqa: E402

from repro.fuzz import FuzzContext, build_pool, case_stream, run_fuzz
from repro.fuzz.generator import stream_digest

SEED = 0
CASES = 2000
SMOKE_CASES = 300


def _digest_for(seed: int, count: int, context: FuzzContext) -> str:
    import random

    rng = random.Random(seed)
    pools = {
        name: build_pool(rng, name, ctx.dataset.usable_items())
        for name, ctx in sorted(context.workloads.items())
    }
    return stream_digest(case_stream(seed, count, pools))


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    cases = SMOKE_CASES if smoke else CASES

    report = run_fuzz(SEED, cases)
    failures = []
    if report.violations:
        failures.append(
            f"{len(report.violations)} differential violation(s): "
            + "; ".join(
                f"[{v['oracle']}] {v['detail'][:160]}"
                for v in report.violations[:5]
            )
        )
    if report.crashes:
        failures.append(f"{report.crashes} crash(es) during fuzzing")

    # Determinism gate: the same seed must reproduce the identical case
    # stream byte-for-byte (fresh context, fresh RNGs).
    with FuzzContext() as context:
        second_digest = _digest_for(SEED, cases, context)
    if second_digest != report.digest:
        failures.append(
            f"stream digest not reproducible: {report.digest} != "
            f"{second_digest}"
        )

    rows = [
        ("seed", str(SEED)),
        ("cases", str(report.cases)),
        ("cases/sec", f"{report.cases_per_second:.1f}"),
        ("elapsed (s)", f"{report.elapsed_seconds:.2f}"),
        ("violations", str(len(report.violations))),
        ("crashes", str(report.crashes)),
        ("digest", report.digest[:16]),
        ("digest reproducible", "yes" if not failures else "CHECK"),
    ]
    table = format_rows(["metric", "value"], rows)
    print(table)
    publish("fuzz", "Adversarial fuzz harness", table)

    path = emit_snapshot(
        "fuzz",
        {
            "cases": report.cases,
            "cases_per_second": round(report.cases_per_second, 2),
            "violations": len(report.violations),
            "crashes": report.crashes,
            "elapsed_seconds": round(report.elapsed_seconds, 3),
        },
        config={
            "seed": SEED,
            "digest": report.digest,
            "smoke": smoke,
            "workloads": sorted(report.workload_counts),
        },
    )
    print(f"snapshot: {path} "
          f"(headline: {read_snapshot(snapshot_path('fuzz'))['headline']})")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all oracles agree on every case; stream is reproducible")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
