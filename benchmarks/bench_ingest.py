"""Ingestion pipeline benchmark: sequential vs parallel sharded QFG build.

Engineering benchmark (not part of the paper's evaluation).  It
regenerates the ingest subsystem's acceptance numbers:

* **fidelity** — the parallel sharded build's QFG fingerprint equals the
  sequential ``QueryLog.build_qfg`` baseline's over the same messy log,
* **throughput** — wall clock and statements/sec of both paths
  (target: >= 3x speedup at 8 workers on the full-size log),
* **resume** — an ingest killed mid-run (fault injection after half the
  shards) resumes from its checkpoint, reuses the committed shards and
  still converges to the same fingerprint.

Run with ``PYTHONPATH=src python benchmarks/bench_ingest.py`` (full
50k-statement log) or ``--smoke`` (tiny log, 2 workers — the advisory CI
mode, which reports the speedup without gating on it).  Exits non-zero
on any fidelity/resume failure, or — in full mode — when the speedup
misses the target.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_rows, publish  # noqa: E402

from repro.core import QueryLog  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.datasets.loggen import SyntheticLogGenerator  # noqa: E402
from repro.errors import IngestInterrupted  # noqa: E402
from repro.ingest import ingest_log  # noqa: E402

SPEEDUP_TARGET = 3.0


def run(statements: int, pool_size: int, workers: int, shards: int,
        gate_speedup: bool) -> int:
    dataset = load_dataset("mas")
    catalog = dataset.database.catalog
    failures: list[str] = []

    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "synthetic.sql"
        generator = SyntheticLogGenerator(catalog, seed=2019,
                                          pool_size=pool_size)
        generator.write(log_path, statements, noise_rate=0.01)

        # Sequential baseline: the seed path — load the file, parse every
        # statement (duplicates included), fold each into the graph.
        started = time.perf_counter()
        sequential_log = QueryLog.from_file(log_path)
        sequential = sequential_log.build_qfg(catalog)
        sequential_seconds = time.perf_counter() - started
        raw_total = len(sequential_log)

        # Parallel sharded ingest of the same file.
        started = time.perf_counter()
        result = ingest_log(log_path, catalog, num_shards=shards,
                            workers=workers)
        parallel_seconds = time.perf_counter() - started

        if result.qfg.fingerprint() != sequential.fingerprint():
            failures.append(
                "parallel ingest fingerprint differs from sequential build"
            )

        # Simulated mid-ingest kill + resume.  The interrupted run builds
        # inline so the cut point is deterministic; the resumed run uses
        # the full worker pool.
        checkpoint = Path(tmp) / "checkpoint"
        cut = max(1, shards // 2)
        try:
            ingest_log(log_path, catalog, num_shards=shards, workers=1,
                       checkpoint_dir=checkpoint, fail_after_shards=cut)
            failures.append("fault injection did not interrupt the ingest")
            resumed = None
        except IngestInterrupted:
            resumed = ingest_log(log_path, catalog, num_shards=shards,
                                 workers=workers, checkpoint_dir=checkpoint)
        if resumed is not None:
            if resumed.stats.reused_shards != cut:
                failures.append(
                    f"resume reused {resumed.stats.reused_shards} shard(s), "
                    f"expected {cut}"
                )
            if resumed.qfg.fingerprint() != sequential.fingerprint():
                failures.append("resumed ingest fingerprint differs")

    speedup = sequential_seconds / parallel_seconds
    stats = result.stats
    rows = [
        ["log statements (raw)", f"{raw_total:,}", ""],
        ["unique after dedup", f"{stats.unique_statements:,}",
         f"{stats.dedup_ratio:.0f}x dedup"],
        ["noise skipped", f"{stats.skipped_statements:,}", ""],
        ["sequential build", f"{sequential_seconds:.2f} s",
         f"{raw_total / sequential_seconds:,.0f} stmts/s"],
        [f"parallel ingest ({workers} workers, {shards} shards)",
         f"{parallel_seconds:.2f} s",
         f"{raw_total / parallel_seconds:,.0f} stmts/s"],
        ["speedup", f"{speedup:.1f}x", f"target >= {SPEEDUP_TARGET:.0f}x"],
        ["resume after kill",
         "ok" if resumed is not None else "FAILED",
         f"{cut} shard(s) reused" if resumed is not None else ""],
    ]
    publish(
        "ingest",
        f"Ingest pipeline: {raw_total:,}-statement synthetic MAS log",
        format_rows(["metric", "measured", "notes"], rows),
    )

    if speedup < SPEEDUP_TARGET:
        message = (
            f"parallel ingest only {speedup:.1f}x sequential "
            f"(target {SPEEDUP_TARGET:.0f}x)"
        )
        if gate_speedup:
            failures.append(message)
        else:
            print(f"ADVISORY: {message} (not gated in smoke mode)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"PASS: fingerprint parity, resume ok, speedup {speedup:.1f}x")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny log, 2 workers (advisory CI mode)")
    parser.add_argument("--statements", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--shards", type=int, default=16)
    args = parser.parse_args()
    if args.smoke:
        statements = args.statements or 3_000
        workers = args.workers or 2
        pool_size = 150
    else:
        statements = args.statements or 50_000
        workers = args.workers or 8
        pool_size = 800
    return run(statements, pool_size, workers, args.shards,
               gate_speedup=not args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
