"""Figure 6 — Pipeline+ accuracy as a function of λ (κ fixed at 5).

λ weights word similarity against the log-driven score.  The paper finds
a wide plateau for 0.1 ≤ λ ≤ 0.8 and a sharp drop as λ → 1 (log evidence
is crucial); at λ = 0 the Yelp benchmark suffers because similarity
scores are needed to rank configurations at all.
"""

from _harness import accuracy, dataset_names, format_rows, publish
from repro.eval import EvalConfig

LAMBDA_VALUES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _run_lambda_sweep() -> dict[str, list[tuple[float, float]]]:
    series: dict[str, list[tuple[float, float]]] = {}
    for dataset in dataset_names():
        points = []
        for lam in LAMBDA_VALUES:
            _, fq = accuracy(dataset, "Pipeline+", EvalConfig(lam=lam))
            points.append((lam, fq))
        series[dataset] = points
    return series


def test_fig6_lambda_sweep(benchmark):
    series = benchmark.pedantic(_run_lambda_sweep, rounds=1, iterations=1)
    rows = []
    for dataset, points in series.items():
        for lam, fq in points:
            rows.append([dataset.upper(), lam, fq])
    table = format_rows(["Dataset", "lambda", "FQ (%)"], rows)
    publish("fig6", "Figure 6 — Pipeline+ accuracy vs lambda (kappa=5)", table)

    for dataset, points in series.items():
        by_lambda = dict(points)
        plateau = [by_lambda[l] for l in (0.1, 0.2, 0.4, 0.6, 0.8)]
        assert max(plateau) - min(plateau) <= 8.0, f"{dataset}: plateau"
        # λ→1 (similarity only) must fall well below the plateau: the log
        # information is crucial for most queries (paper Section VII-D).
        assert by_lambda[1.0] < min(plateau) - 5.0, f"{dataset}: lambda=1 drop"
