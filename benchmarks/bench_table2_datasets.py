"""Table II — statistics of each benchmark dataset.

Regenerates the dataset-statistics table (size is the paper's reported
dump size; relations/attributes/FK-PK/queries are measured from our
builders and must match the paper exactly — they are also asserted by
the dataset validators).
"""

from _harness import format_rows, publish
from repro.datasets import load_dataset

PAPER = {
    "mas": (3.2, 17, 53, 19, 194),
    "yelp": (2.0, 7, 38, 7, 127),
    "imdb": (1.3, 16, 65, 20, 128),
}


def _build_table2() -> list[list[object]]:
    rows = []
    for name in ("mas", "yelp", "imdb"):
        stats = load_dataset(name).stats()
        paper = PAPER[name]
        rows.append(
            [
                name.upper(),
                f"{stats['size_gb']} GB (paper {paper[0]} GB)",
                stats["relations"],
                stats["attributes"],
                stats["fk_pk"],
                stats["queries"],
            ]
        )
    return rows


def test_table2_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_build_table2, rounds=1, iterations=1)
    table = format_rows(
        ["Dataset", "Size", "Rels", "Attrs", "FK-PK", "Queries"], rows
    )
    publish("table2", "Table II — benchmark dataset statistics", table)
    for row, name in zip(rows, ("mas", "yelp", "imdb")):
        paper = PAPER[name]
        assert row[2] == paper[1], f"{name} relations"
        assert row[3] == paper[2], f"{name} attributes"
        assert row[4] == paper[3], f"{name} FK-PK"
        assert row[5] == paper[4], f"{name} queries"
